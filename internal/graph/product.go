package graph

import (
	"math/bits"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"pathquery/internal/automata"
	"pathquery/internal/bitset"
	"pathquery/internal/words"
)

// This file implements the product constructions between a graph and a
// query DFA that power both query evaluation (Section 2: q(G) = {ν |
// L(q) ∩ paths_G(ν) ≠ ∅}) and the learner's consistency checks (lines 4-6
// of Algorithm 1). All of them run in O(|E| · |Q|) — the polynomial
// emptiness-of-intersection the paper cites (Lange & Rossmanith).
//
// The product space is the dense index v·|Q|+q over (node, DFA state)
// pairs; visited sets are pooled bitsets over it (see csr.go), successor
// loops walk CSR segments so the DFA transition is looked up once per
// (state, distinct symbol), and SelectMonadic's backward propagation runs
// level-synchronously across worker shards when the space is large enough
// to amortize the goroutines. Every search runs against one immutable
// epoch Snapshot, so concurrent queries and mutations never interfere.

// Parallelization gates for SelectMonadic, tunable by white-box tests:
// shards engage only when the product space and the current frontier are
// both large enough that atomic marking beats a single-threaded pass.
var (
	selectParallelMinSpace    = 1 << 15
	selectParallelMinFrontier = 2048
	selectMaxWorkers          = 8
)

// SelectMonadic returns the per-node selection vector of the query DFA d
// under monadic semantics: selected[ν] iff L(d) ∩ paths_G(ν) ≠ ∅.
func (g *Graph) SelectMonadic(d *automata.DFA) []bool {
	return g.reader().SelectMonadic(d)
}

// SelectMonadic returns the per-node selection vector of the query DFA d
// under monadic semantics: selected[ν] iff L(d) ∩ paths_G(ν) ≠ ∅.
//
// It marks product pairs (node, state) from which an accepting state is
// reachable, by backward propagation from every (node, final) pair, then
// reads off pairs (ν, start). Propagation is a level-synchronous BFS whose
// frontier is split across worker shards marking the shared visited bitset
// with atomic try-set (exactly-once enqueue); small instances run the same
// loop single-threaded without atomics.
func (s *Snapshot) SelectMonadic(d *automata.DFA) []bool {
	nv, nq := s.nv, d.NumStates()
	selected := make([]bool, nv)
	if nv == 0 || nq == 0 {
		return selected
	}
	if nq <= 64 {
		// Learned and workload DFAs are small: pack each node's marked
		// state set into one word and propagate whole masks at once.
		return s.selectMonadicMasked(d, selected)
	}
	// Flat reverse DFA transitions, bucketed by sym·|Q|+q: one counting
	// pass sizes the buckets, a second fills them.
	nsym := d.NumSyms
	revOff := make([]int32, nsym*nq+1)
	for p := 0; p < nq; p++ {
		for sym, q := range d.Delta[p] {
			if q != automata.None {
				revOff[sym*nq+int(q)+1]++
			}
		}
	}
	for i := 1; i < len(revOff); i++ {
		revOff[i] += revOff[i-1]
	}
	revPred := make([]int32, revOff[len(revOff)-1])
	fill := append([]int32(nil), revOff[:len(revOff)-1]...)
	for p := 0; p < nq; p++ {
		for sym, q := range d.Delta[p] {
			if q != automata.None {
				k := sym*nq + int(q)
				revPred[fill[k]] = int32(p)
				fill[k]++
			}
		}
	}

	size := nv * nq
	sc := s.getProduct(size)
	defer s.putProductDense(sc, size)
	good := sc.bits
	frontier, next := sc.stack, sc.next
	for q := 0; q < nq; q++ {
		if !d.Final[q] {
			continue
		}
		for v := 0; v < nv; v++ {
			idx := v*nq + q
			good.Set(idx)
			frontier = append(frontier, uint64(idx))
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > selectMaxWorkers {
		workers = selectMaxWorkers
	}
	parallel := workers > 1 && size >= selectParallelMinSpace
	for len(frontier) > 0 {
		if !parallel || len(frontier) < selectParallelMinFrontier {
			next = s.relaxMonadic(d, nq, revOff, revPred, good, frontier, next, false)
		} else {
			next = relaxSharded(sc, frontier, next, workers, func(part, buf []uint64) []uint64 {
				return s.relaxMonadic(d, nq, revOff, revPred, good, part, buf, true)
			})
		}
		frontier, next = next, frontier[:0]
	}
	sc.stack, sc.next = frontier, next

	start := int(d.Start)
	for v := 0; v < nv; v++ {
		selected[v] = good.Get(v*nq + start)
	}
	return selected
}

// relaxMonadic expands one frontier of the backward product BFS: for each
// pair (v, q), every in-edge (u, sym, v) combines with every DFA
// transition p --sym--> q into the predecessor pair (u, p). Newly marked
// pairs are appended to next. With atomic=true marking is safe for
// concurrent shards sharing good.
func (s *Snapshot) relaxMonadic(d *automata.DFA, nq int, revOff, revPred []int32, good bitset.Bits, frontier, next []uint64, atomic bool) []uint64 {
	ci := &s.in
	for _, idx := range frontier {
		v := NodeID(idx / uint64(nq))
		q := int(idx % uint64(nq))
		for si := ci.segStart[v]; si < ci.segStart[v+1]; si++ {
			sym := int(ci.segSym[si])
			if sym >= d.NumSyms {
				continue
			}
			k := sym*nq + q
			preds := revPred[revOff[k]:revOff[k+1]]
			if len(preds) == 0 {
				continue
			}
			tails := ci.edges[ci.segOff[si]:ci.segOff[si+1]]
			for _, p := range preds {
				base := int(p)
				for _, e := range tails {
					pidx := int(e.To)*nq + base
					if atomic {
						if good.TrySetAtomic(pidx) {
							next = append(next, uint64(pidx))
						}
					} else if good.TrySet(pidx) {
						next = append(next, uint64(pidx))
					}
				}
			}
		}
	}
	return next
}

// selectMonadicMasked is SelectMonadic for DFAs with at most 64 states:
// good[v] is the bitmask of states q with an accepting path from (v, q).
// Propagation is level-synchronous with the frontier deduplicated by node
// — newly marked states accumulate into a per-node pending mask, so each
// active node's in-segments are scanned once per level no matter how many
// product pairs became good there. predMask[sym·|Q|+q] is the mask of DFA
// predecessors p with δ(p, sym) = q, so product predecessor sets are
// word-parallel unions.
func (s *Snapshot) selectMonadicMasked(d *automata.DFA, selected []bool) []bool {
	nv, nq := s.nv, d.NumStates()
	nsym := d.NumSyms
	predMask := make([]uint64, nsym*nq)
	for p := 0; p < nq; p++ {
		for sym, q := range d.Delta[p] {
			if q != automata.None {
				predMask[sym*nq+int(q)] |= 1 << uint(p)
			}
		}
	}
	var finalMask uint64
	for q, f := range d.Final {
		if f {
			finalMask |= 1 << uint(q)
		}
	}
	if finalMask == 0 {
		return selected
	}

	sc := s.getProduct(nv * 64)
	defer s.putProductDense(sc, nv*64)
	good := sc.bits // one word per node
	sc.maskCur = sc.maskCur.Grow(nv * 64)
	sc.maskNext = sc.maskNext.Grow(nv * 64)

	workers := runtime.GOMAXPROCS(0)
	if workers > selectMaxWorkers {
		workers = selectMaxWorkers
	}
	startBit := uint64(1) << uint(d.Start)
	if workers > 1 && nv*nq >= selectParallelMinSpace {
		s.selectMaskedParallel(d, nq, predMask, finalMask, good, sc, workers)
		for v := 0; v < nv; v++ {
			selected[v] = good[v]&startBit != 0
		}
		return selected
	}
	s.selectMaskedSerial(d, nq, predMask, finalMask, good, sc)
	// The serial path keeps finalMask implicit (every (v, final) pair is
	// good by definition and was relaxed by the level-1 sweep).
	for v := 0; v < nv; v++ {
		selected[v] = (good[v]|finalMask)&startBit != 0
	}
	return selected
}

// selectMaskedSerial runs the mask-based backward propagation
// single-threaded. Level 1 relaxes the identical finalMask from every
// node, so it collapses to one linear sweep over all in-segments with a
// per-symbol predecessor mask — segments whose symbol has no DFA
// transition into a final state are skipped without touching their edges.
// The sparse remainder drains through a worklist deduplicated by a
// per-node pending mask.
func (s *Snapshot) selectMaskedSerial(d *automata.DFA, nq int, predMask []uint64, finalMask uint64, good bitset.Bits, sc *productScratch) {
	ci := &s.in
	nsym := d.NumSyms
	pm1 := make([]uint64, s.nsym)
	for sym := 0; sym < nsym && sym < len(pm1); sym++ {
		var pm uint64
		for mm := finalMask; mm != 0; mm &= mm - 1 {
			pm |= predMask[sym*nq+bits.TrailingZeros64(mm)]
		}
		pm1[sym] = pm
	}
	pending := sc.maskCur
	stack := sc.stack
	for si := 0; si < len(ci.segSym); si++ {
		pm := pm1[ci.segSym[si]]
		if pm == 0 {
			continue
		}
		for _, e := range ci.edges[ci.segOff[si]:ci.segOff[si+1]] {
			if add := pm &^ (good[e.To] | finalMask); add != 0 {
				good[e.To] |= add
				if pending[e.To] == 0 {
					stack = append(stack, uint64(e.To))
				}
				pending[e.To] |= add
			}
		}
	}
	for len(stack) > 0 {
		vi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := NodeID(vi)
		m := pending[v]
		pending[v] = 0
		for si := ci.segStart[v]; si < ci.segStart[v+1]; si++ {
			sym := int(ci.segSym[si])
			if sym >= nsym {
				continue
			}
			base := sym * nq
			var pm uint64
			for mm := m; mm != 0; mm &= mm - 1 {
				pm |= predMask[base+bits.TrailingZeros64(mm)]
			}
			if pm == 0 {
				continue
			}
			for _, e := range ci.edges[ci.segOff[si]:ci.segOff[si+1]] {
				if add := pm &^ (good[e.To] | finalMask); add != 0 {
					good[e.To] |= add
					if pending[e.To] == 0 {
						stack = append(stack, uint64(e.To))
					}
					pending[e.To] |= add
				}
			}
		}
	}
	sc.stack = stack
}

// selectMaskedParallel runs the mask-based backward propagation as a
// level-synchronous BFS whose frontier is split across worker shards
// marking the shared good array with atomic-or (exactly-once per state
// bit). Small frontiers fall back to the single-threaded relax to avoid
// goroutine overhead between dense levels.
func (s *Snapshot) selectMaskedParallel(d *automata.DFA, nq int, predMask []uint64, finalMask uint64, good bitset.Bits, sc *productScratch, workers int) {
	nv := s.nv
	curNew, nextNew := sc.maskCur, sc.maskNext
	frontier, next := sc.stack, sc.next
	for v := 0; v < nv; v++ {
		good[v] = finalMask
		curNew[v] = finalMask
		frontier = append(frontier, uint64(v))
	}
	for len(frontier) > 0 {
		if len(frontier) < selectParallelMinFrontier {
			next = s.relaxMasked(d, nq, predMask, good, curNew, nextNew, frontier, next, false)
		} else {
			cn, nn := curNew, nextNew
			next = relaxSharded(sc, frontier, next, workers, func(part, buf []uint64) []uint64 {
				return s.relaxMasked(d, nq, predMask, good, cn, nn, part, buf, true)
			})
		}
		frontier, next = next, frontier[:0]
		curNew, nextNew = nextNew, curNew
	}
	sc.stack, sc.next = frontier, next
}

// relaxSharded expands one level-synchronous frontier across worker
// shards: the frontier is chunked over the workers, each relaxing its
// part into a reused per-shard buffer (marking must be atomic inside
// relax), and the shard results are merged into next after the barrier.
func relaxSharded(sc *productScratch, frontier, next []uint64, workers int, relax func(part, buf []uint64) []uint64) []uint64 {
	if len(sc.shards) < workers {
		sc.shards = make([][]uint64, workers)
	}
	chunk := (len(frontier) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(frontier) {
			hi = len(frontier)
		}
		if lo >= hi {
			sc.shards[w] = sc.shards[w][:0]
			continue
		}
		wg.Add(1)
		go func(w int, part []uint64) {
			defer wg.Done()
			sc.shards[w] = relax(part, sc.shards[w][:0])
		}(w, frontier[lo:hi])
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		next = append(next, sc.shards[w]...)
	}
	return next
}

// relaxMasked expands one deduplicated frontier level of the mask-based
// backward BFS: each entry is a node whose pending mask curNew[v] holds
// the states marked good there last level (consumed and cleared here).
// Nodes gaining their first new state this level are appended to next,
// with the state bits accumulating in nextNew. With atomicMark=true,
// marking uses atomic-or so concurrent shards observe each transition
// exactly once.
func (s *Snapshot) relaxMasked(d *automata.DFA, nq int, predMask []uint64, good, curNew, nextNew bitset.Bits, frontier, next []uint64, atomicMark bool) []uint64 {
	ci := &s.in
	for _, vi := range frontier {
		v := NodeID(vi)
		m := curNew[v]
		curNew[v] = 0
		for si := ci.segStart[v]; si < ci.segStart[v+1]; si++ {
			sym := int(ci.segSym[si])
			if sym >= d.NumSyms {
				continue
			}
			base := sym * nq
			var pm uint64
			for mm := m; mm != 0; mm &= mm - 1 {
				pm |= predMask[base+bits.TrailingZeros64(mm)]
			}
			if pm == 0 {
				continue
			}
			for _, e := range ci.edges[ci.segOff[si]:ci.segOff[si+1]] {
				if atomicMark {
					old := atomic.OrUint64(&good[e.To], pm)
					if add := pm &^ old; add != 0 {
						if atomic.OrUint64(&nextNew[e.To], add) == 0 {
							next = append(next, uint64(e.To))
						}
					}
				} else if add := pm &^ good[e.To]; add != 0 {
					good[e.To] |= add
					if nextNew[e.To] == 0 {
						next = append(next, uint64(e.To))
					}
					nextNew[e.To] |= add
				}
			}
		}
	}
	return next
}

// Covers reports whether L(d) ∩ paths_G(ν) ≠ ∅ for a single node.
func (g *Graph) Covers(d *automata.DFA, nu NodeID) bool {
	return g.reader().CoversAny(d, []NodeID{nu})
}

// Covers reports whether L(d) ∩ paths_G(ν) ≠ ∅ for a single node, with an
// early-exit forward search from (ν, d.Start).
func (s *Snapshot) Covers(d *automata.DFA, nu NodeID) bool {
	return s.CoversAny(d, []NodeID{nu})
}

// CoversAny reports whether L(d) ∩ paths_G(X) ≠ ∅: some node of X has a
// path in L(d).
func (g *Graph) CoversAny(d *automata.DFA, set []NodeID) bool {
	return g.reader().CoversAny(d, set)
}

// CoversAny reports whether L(d) ∩ paths_G(X) ≠ ∅: some node of X has a
// path in L(d). This is the learner's consistency primitive — with X = S−
// it decides whether a candidate generalization selects a negative example.
func (s *Snapshot) CoversAny(d *automata.DFA, set []NodeID) bool {
	nq := d.NumStates()
	if nq == 0 || len(set) == 0 {
		return false
	}
	sc := s.getProduct(s.nv * nq)
	defer s.putProductSparse(sc)
	stack := sc.stack
	for _, v := range set {
		idx := int(v)*nq + int(d.Start)
		if sc.bits.TrySet(idx) {
			sc.touched = append(sc.touched, uint64(idx))
			stack = append(stack, uint64(idx))
		}
	}
	found := false
	co := &s.out
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := NodeID(idx / uint64(nq))
		q := int32(idx % uint64(nq))
		if d.Final[q] {
			found = true
			break
		}
		stack = s.expandForward(d, co, v, q, nq, sc, stack)
	}
	sc.stack = stack
	return found
}

// expandForward pushes the unvisited forward product successors of (v, q):
// out-segment symbols look up the DFA transition once, then mark every
// neighbor in the contiguous segment.
func (s *Snapshot) expandForward(d *automata.DFA, co *csr, v NodeID, q int32, nq int, sc *productScratch, stack []uint64) []uint64 {
	delta := d.Delta[q]
	for si := co.segStart[v]; si < co.segStart[v+1]; si++ {
		sym := int(co.segSym[si])
		if sym >= d.NumSyms {
			continue
		}
		t := delta[sym]
		if t == automata.None {
			continue
		}
		base := int(t)
		for _, e := range co.edges[co.segOff[si]:co.segOff[si+1]] {
			idx := int(e.To)*nq + base
			if sc.bits.TrySet(idx) {
				sc.touched = append(sc.touched, uint64(idx))
				stack = append(stack, uint64(idx))
			}
		}
	}
	return stack
}

// CoversPair reports whether some path from u to v spells a word of L(d).
func (g *Graph) CoversPair(d *automata.DFA, u, v NodeID) bool {
	return g.reader().CoversPair(d, u, v)
}

// CoversPair reports whether some path from u to v spells a word of L(d) —
// the binary semantics of Appendix B: w ∈ paths2_G(u,v) ∩ L(d) ≠ ∅.
// Note that the accepting condition requires landing exactly on v in a
// final DFA state; ε is accepted only when u = v and the start is final.
func (s *Snapshot) CoversPair(d *automata.DFA, u, v NodeID) bool {
	nq := d.NumStates()
	if nq == 0 {
		return false
	}
	sc := s.getProduct(s.nv * nq)
	defer s.putProductSparse(sc)
	start := int(u)*nq + int(d.Start)
	sc.bits.Set(start)
	sc.touched = append(sc.touched, uint64(start))
	stack := append(sc.stack, uint64(start))
	found := false
	co := &s.out
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		x := NodeID(idx / uint64(nq))
		q := int32(idx % uint64(nq))
		if x == v && d.Final[q] {
			found = true
			break
		}
		stack = s.expandForward(d, co, x, q, nq, sc, stack)
	}
	sc.stack = stack
	return found
}

// SelectBinaryFrom returns all v such that (u, v) is selected by d under
// binary semantics, in increasing id order.
func (g *Graph) SelectBinaryFrom(d *automata.DFA, u NodeID) []NodeID {
	return g.reader().SelectBinaryFrom(d, u)
}

// SelectBinaryFrom returns all v such that (u, v) is selected by d under
// binary semantics, in increasing id order.
func (s *Snapshot) SelectBinaryFrom(d *automata.DFA, u NodeID) []NodeID {
	nq := d.NumStates()
	if nq == 0 {
		return nil
	}
	sc := s.getProduct(s.nv * nq)
	defer s.putProductSparse(sc)
	hits := s.getStep()
	defer s.putStep(hits)
	start := int(u)*nq + int(d.Start)
	sc.bits.Set(start)
	sc.touched = append(sc.touched, uint64(start))
	stack := append(sc.stack, uint64(start))
	mk := bitset.NewMarker(hits.nodes)
	co := &s.out
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		x := NodeID(idx / uint64(nq))
		q := int32(idx % uint64(nq))
		if d.Final[q] {
			mk.TrySet(int(x))
		}
		stack = s.expandForward(d, co, x, q, nq, sc, stack)
	}
	sc.stack = stack
	if mk.Count() == 0 {
		return nil
	}
	out := make([]NodeID, 0, mk.Count())
	mk.Drain(func(i int) { out = append(out, NodeID(i)) })
	return out
}

// PathsIncluded decides paths_G(left) ⊆ paths_G(right) exactly, via a
// subset construction on the right side: it searches for a word matched
// from left whose right-coverage set becomes empty. Both languages are
// prefix-closed with every state accepting, so inclusion fails exactly when
// such a word exists. The worst case is exponential in |right| — this is
// the PSPACE-hard core of consistency checking (Lemma 3.2) and node
// informativeness (Lemma 4.2); callers use it on small graphs or fall back
// to the k-bounded variant below.
func (g *Graph) PathsIncluded(left, right []NodeID) bool {
	return g.reader().PathsIncluded(left, right)
}

// PathsIncluded decides paths_G(left) ⊆ paths_G(right) exactly on this
// epoch snapshot; see the Graph form for complexity caveats.
func (s *Snapshot) PathsIncluded(left, right []NodeID) bool {
	_, included := s.firstEscaping(left, right, -1)
	return included
}

// FirstEscapingPath returns the canonical-order minimal word in
// paths_G(left) \ paths_G(right), with ok=false when inclusion holds
// (no such word). Depth < 0 means unbounded.
func (g *Graph) FirstEscapingPath(left, right []NodeID, depth int) (words.Word, bool) {
	w, included := g.reader().firstEscaping(left, right, depth)
	return w, !included
}

// firstEscaping runs the canonical-order BFS over pairs (left node, right
// subset); returns the first word whose right subset is empty. depth < 0
// means unbounded (termination is still guaranteed: the product state
// space is finite). Right subsets are interned to dense ids via
// NodeSetIndex with memoized (set, symbol) transitions, so each distinct
// subset is stepped once per symbol instead of re-encoded per edge.
func (s *Snapshot) firstEscaping(left, right []NodeID, depth int) (words.Word, bool) {
	rightStart := dedupNodes(right)
	if len(rightStart) == 0 {
		// Right side covers nothing: even ε is uncovered when the right
		// node set is empty, for any left node.
		if len(left) > 0 {
			return words.Epsilon, false
		}
		return nil, true
	}
	ix := NewNodeSetIndex()
	startSet := ix.Intern(rightStart)
	type state struct {
		v    NodeID
		set  int32
		word words.Word
	}
	seenKey := func(v NodeID, set int32) uint64 {
		return uint64(uint32(set))<<32 | uint64(uint32(v))
	}
	seen := make(map[uint64]bool)
	trans := make(map[uint64]int32) // (set, sym) -> stepped set id
	var queue []state
	for _, v := range dedupNodes(left) {
		if k := seenKey(v, startSet); !seen[k] {
			seen[k] = true
			queue = append(queue, state{v, startSet, words.Epsilon})
		}
	}
	co := &s.out
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if len(ix.Set(cur.set)) == 0 {
			return cur.word, false
		}
		if depth >= 0 && len(cur.word) >= depth {
			continue
		}
		for si := co.segStart[cur.v]; si < co.segStart[cur.v+1]; si++ {
			sym := co.segSym[si]
			tk := uint64(uint32(cur.set))<<32 | uint64(sym)
			ns, ok := trans[tk]
			if !ok {
				ns = ix.Intern(s.Step(ix.Set(cur.set), sym))
				trans[tk] = ns
			}
			var w words.Word
			for _, e := range co.edges[co.segOff[si]:co.segOff[si+1]] {
				k := seenKey(e.To, ns)
				if !seen[k] {
					seen[k] = true
					if w == nil {
						w = words.Append(cur.word, sym)
					}
					queue = append(queue, state{e.To, ns, w})
				}
			}
		}
	}
	return nil, true
}

// dedupNodes returns a sorted, deduplicated copy of set.
func dedupNodes(set []NodeID) []NodeID {
	out := append([]NodeID(nil), set...)
	slices.Sort(out)
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

// AsNFA materializes the graph as an NFA with the given start nodes and
// every state accepting — the explicit form of paths_G(starts). Useful for
// tests cross-checking product algorithms against the automata package.
func (g *Graph) AsNFA(starts []NodeID) *automata.NFA {
	return g.reader().AsNFA(starts)
}

// AsNFA materializes the snapshot as an NFA with the given start nodes and
// every state accepting.
func (s *Snapshot) AsNFA(starts []NodeID) *automata.NFA {
	n := automata.NewNFA(s.nv, s.nsym)
	for v := 0; v < s.nv; v++ {
		n.Final[v] = true
		for _, e := range s.out.row(NodeID(v)) {
			n.AddTransition(NodeID(v), e.Sym, e.To)
		}
	}
	n.Starts = append([]int32(nil), starts...)
	return n
}
