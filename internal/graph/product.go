package graph

import (
	"context"
	"math/bits"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/bitset"
	"pathquery/internal/plan"
	"pathquery/internal/words"
)

// This file is the evaluator core: the product constructions between a
// graph and a compiled query plan (internal/plan) that power both query
// evaluation (Section 2: q(G) = {ν | L(q) ∩ paths_G(ν) ≠ ∅}) and the
// learner's consistency checks (lines 4-6 of Algorithm 1). All of them run
// in O(|E| · |Q|) — the polynomial emptiness-of-intersection the paper
// cites (Lange & Rossmanith).
//
// One traversal core serves every semantics. Forward expansion
// (expandForwardPlan / relaxPlanForward) walks CSR out-segments through
// the plan's flat Delta with accept-reachability (Live) pruning; backward
// expansion (relaxPlanBackward) walks in-segments through the plan's
// packed reverse DFA (RevOff/RevPred) with start-reachability (Reach)
// pruning. On top of them:
//
//   - SelectMonadicPlan: backward propagation from every accepting pair,
//     in the plan's masked (|Q| ≤ 64) or packed layout — the per-symbol
//     tables come precompiled from the plan instead of being rebuilt per
//     call.
//   - CoversAnyPlan / CoversPlan: early-exit forward search, skipping
//     whole start nodes through the plan's first-symbol filter.
//   - CoversPairPlan: bidirectional reachability — per level the cheaper
//     frontier (by CSR degree sums) is expanded, and the sides meet in a
//     shared product space.
//   - SelectBinaryFromPlan: direction-optimizing evaluation — forward
//     levels run until a backward sweep from the accepting set becomes
//     cheaper; once the backward co-accepting set is complete, the
//     remaining forward work is pruned to it.
//   - WitnessBFS (witness.go): the canonical-order word search shared by
//     firstEscaping here, scp.Coverage.Smallest, and the binary learner's
//     smallest pair-path.
//
// The product space is the dense index v·|Q|+q over (node, DFA state)
// pairs; visited sets are pooled bitsets over it (see csr.go). Every
// search runs against one immutable epoch Snapshot, so concurrent queries
// and mutations never interfere. The *automata.DFA entry points remain as
// compatibility wrappers that compile a shape-preserving plan on the fly
// (plan.FromDFA); steady-state callers hold a compiled plan.

// Parallelization gates for SelectMonadic, tunable by white-box tests:
// shards engage only when the product space and the current frontier are
// both large enough that atomic marking beats a single-threaded pass.
var (
	selectParallelMinSpace    = 1 << 15
	selectParallelMinFrontier = 2048
	selectMaxWorkers          = 8
)

// ctxCheckInterval bounds how many worklist pops run between context
// cancellation checks in the searches that are not level-synchronous
// (level-synchronous searches check once per frontier level). Checking
// ctx.Err() is one atomic load, so the interval only has to keep the
// check out of the innermost edge loops.
const ctxCheckInterval = 4096

// orWord is atomic.OrUint64 through an explicit load/CAS loop. Kept out
// of line on purpose: the direct OrUint64 intrinsic miscompiles inside
// relaxMasked's segment loop under go1.24 -- optimized builds dropped
// marks that appear with -N or with the race detector -- and the call
// boundary plus CAS shape sidesteps the bad lowering.
//
//go:noinline
func orWord(p *uint64, mask uint64) uint64 {
	for {
		old := atomic.LoadUint64(p)
		if old&mask == mask || atomic.CompareAndSwapUint64(p, old, old|mask) {
			return old
		}
	}
}

// SelectMonadic returns the per-node selection vector of the query DFA d
// under monadic semantics: selected[ν] iff L(d) ∩ paths_G(ν) ≠ ∅.
func (g *Graph) SelectMonadic(d *automata.DFA) []bool {
	return g.reader().SelectMonadic(d)
}

// SelectMonadic is the compatibility form of SelectMonadicPlan for a raw
// DFA: the plan is compiled per call (shape-preserving). Hot paths hold a
// *plan.Plan instead.
func (s *Snapshot) SelectMonadic(d *automata.DFA) []bool {
	return s.SelectMonadicPlan(plan.FromDFA(d))
}

// SelectMonadicPlan returns the per-node selection vector of the compiled
// query p under monadic semantics: selected[ν] iff L(p) ∩ paths_G(ν) ≠ ∅.
//
// It marks product pairs (node, state) from which an accepting state is
// reachable, by backward propagation from every (node, final) pair, then
// reads off pairs (ν, start). Propagation is a level-synchronous BFS whose
// frontier is split across worker shards marking the shared visited bitset
// with atomic try-set (exactly-once enqueue); small instances run the same
// loop single-threaded without atomics. The per-symbol reverse tables come
// precompiled from the plan.
func (s *Snapshot) SelectMonadicPlan(p *plan.Plan) []bool {
	selected, _ := s.SelectMonadicPlanCtx(context.Background(), p)
	return selected
}

// SelectMonadicPlanCtx is SelectMonadicPlan honoring ctx: cancellation is
// checked once per propagation level, and a canceled or deadline-exceeded
// evaluation returns ctx.Err() with a nil selection.
func (s *Snapshot) SelectMonadicPlanCtx(ctx context.Context, p *plan.Plan) ([]bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nv, nq := s.nv, p.NumStates
	selected := make([]bool, nv)
	if nv == 0 || nq == 0 || p.Empty() {
		return selected, nil
	}
	if p.Layout == plan.LayoutMasked {
		// Learned and workload DFAs are small: pack each node's marked
		// state set into one word and propagate whole masks at once.
		return s.selectMonadicMasked(ctx, p, selected)
	}

	size := nv * nq
	sc := s.getProduct(size)
	defer s.putProductDense(sc, size)
	good := sc.bits
	frontier, next := sc.stack, sc.next
	for _, q := range p.Finals {
		for v := 0; v < nv; v++ {
			idx := v*nq + int(q)
			good.Set(idx)
			frontier = append(frontier, uint64(idx))
		}
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > selectMaxWorkers {
		workers = selectMaxWorkers
	}
	parallel := workers > 1 && size >= selectParallelMinSpace
	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			sc.stack, sc.next = frontier, next
			return nil, err
		}
		if !parallel || len(frontier) < selectParallelMinFrontier {
			next = s.relaxMonadic(p, nq, good, frontier, next, false)
		} else {
			next = relaxSharded(sc, frontier, next, workers, func(part, buf []uint64) []uint64 {
				return s.relaxMonadic(p, nq, good, part, buf, true)
			})
		}
		frontier, next = next, frontier[:0]
	}
	sc.stack, sc.next = frontier, next

	start := int(p.Start)
	for v := 0; v < nv; v++ {
		selected[v] = good.Get(v*nq + start)
	}
	return selected, nil
}

// relaxMonadic expands one frontier of the backward product BFS: for each
// pair (v, q), every in-edge (u, sym, v) combines with every DFA
// transition p --sym--> q (read from the plan's packed reverse table) into
// the predecessor pair (u, p). Newly marked pairs are appended to next.
// With atomic=true marking is safe for concurrent shards sharing good.
func (s *Snapshot) relaxMonadic(p *plan.Plan, nq int, good bitset.Bits, frontier, next []uint64, atomic bool) []uint64 {
	ci := &s.in
	for _, idx := range frontier {
		v := NodeID(idx / uint64(nq))
		q := int(idx % uint64(nq))
		rs := ci.segs(v)
		for si := range rs.syms {
			sym := int(rs.syms[si])
			if sym >= p.NumSyms {
				continue
			}
			k := sym*nq + q
			preds := p.RevPred[p.RevOff[k]:p.RevOff[k+1]]
			if len(preds) == 0 {
				continue
			}
			tails := rs.edges[rs.offs[si]:rs.offs[si+1]]
			for _, pr := range preds {
				base := int(pr)
				for _, e := range tails {
					pidx := int(e.To)*nq + base
					if atomic {
						if good.TrySetAtomic(pidx) {
							next = append(next, uint64(pidx))
						}
					} else if good.TrySet(pidx) {
						next = append(next, uint64(pidx))
					}
				}
			}
		}
	}
	return next
}

// selectMonadicMasked is SelectMonadicPlan for plans in the masked layout
// (at most 64 states): good[v] is the bitmask of states q with an
// accepting path from (v, q). Propagation is level-synchronous with the
// frontier deduplicated by node — newly marked states accumulate into a
// per-node pending mask, so each active node's in-segments are scanned
// once per level no matter how many product pairs became good there. The
// plan's PredMask[sym·|Q|+q] is the mask of DFA predecessors p with
// δ(p, sym) = q, so product predecessor sets are word-parallel unions.
func (s *Snapshot) selectMonadicMasked(ctx context.Context, p *plan.Plan, selected []bool) ([]bool, error) {
	nv, nq := s.nv, p.NumStates
	if p.FinalMask == 0 {
		return selected, nil
	}

	sc := s.getProduct(nv * 64)
	defer s.putProductDense(sc, nv*64)
	good := sc.bits // one word per node
	sc.maskCur = sc.maskCur.Grow(nv * 64)
	sc.maskNext = sc.maskNext.Grow(nv * 64)

	workers := runtime.GOMAXPROCS(0)
	if workers > selectMaxWorkers {
		workers = selectMaxWorkers
	}
	startBit := uint64(1) << uint(p.Start)
	if workers > 1 && nv*nq >= selectParallelMinSpace {
		if err := s.selectMaskedParallel(ctx, p, nq, good, sc, workers); err != nil {
			return nil, err
		}
		for v := 0; v < nv; v++ {
			selected[v] = good[v]&startBit != 0
		}
		return selected, nil
	}
	if err := s.selectMaskedSerial(ctx, p, nq, good, sc); err != nil {
		return nil, err
	}
	// The serial path keeps FinalMask implicit (every (v, final) pair is
	// good by definition and was relaxed by the level-1 sweep).
	for v := 0; v < nv; v++ {
		selected[v] = (good[v]|p.FinalMask)&startBit != 0
	}
	return selected, nil
}

// selectMaskedSerial runs the mask-based backward propagation
// single-threaded. Level 1 relaxes the identical FinalMask from every
// node, so it collapses to one linear sweep over all in-segments with the
// plan's precompiled FinalPredMask — segments whose symbol has no DFA
// transition into a final state are skipped without touching their edges.
// The sparse remainder drains through a worklist deduplicated by a
// per-node pending mask.
func (s *Snapshot) selectMaskedSerial(ctx context.Context, p *plan.Plan, nq int, good bitset.Bits, sc *productScratch) error {
	ci := &s.in
	nsym := p.NumSyms
	predMask, finalMask := p.PredMask, p.FinalMask
	pending := sc.maskCur
	stack := sc.stack
	for w := 0; w < s.nv; w++ {
		rs := ci.segs(NodeID(w))
		for si := range rs.syms {
			sym := int(rs.syms[si])
			if sym >= nsym {
				continue
			}
			pm := p.FinalPredMask[sym]
			if pm == 0 {
				continue
			}
			for _, e := range rs.edges[rs.offs[si]:rs.offs[si+1]] {
				if add := pm &^ (good[e.To] | finalMask); add != 0 {
					good[e.To] |= add
					if pending[e.To] == 0 {
						stack = append(stack, uint64(e.To))
					}
					pending[e.To] |= add
				}
			}
		}
	}
	pops := 0
	for len(stack) > 0 {
		if pops++; pops%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				// Zero the pending masks of the unprocessed worklist so
				// the scratch goes back to the pool clean.
				for _, vi := range stack {
					pending[vi] = 0
				}
				sc.stack = stack[:0]
				return err
			}
		}
		vi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := NodeID(vi)
		m := pending[v]
		pending[v] = 0
		rs := ci.segs(v)
		for si := range rs.syms {
			sym := int(rs.syms[si])
			if sym >= nsym {
				continue
			}
			base := sym * nq
			var pm uint64
			for mm := m; mm != 0; mm &= mm - 1 {
				pm |= predMask[base+bits.TrailingZeros64(mm)]
			}
			if pm == 0 {
				continue
			}
			for _, e := range rs.edges[rs.offs[si]:rs.offs[si+1]] {
				if add := pm &^ (good[e.To] | finalMask); add != 0 {
					good[e.To] |= add
					if pending[e.To] == 0 {
						stack = append(stack, uint64(e.To))
					}
					pending[e.To] |= add
				}
			}
		}
	}
	sc.stack = stack
	return nil
}

// selectMaskedParallel runs the mask-based backward propagation as a
// level-synchronous BFS whose frontier is split across worker shards
// marking the shared good array with atomic-or (exactly-once per state
// bit). Small frontiers fall back to the single-threaded relax to avoid
// goroutine overhead between dense levels.
func (s *Snapshot) selectMaskedParallel(ctx context.Context, p *plan.Plan, nq int, good bitset.Bits, sc *productScratch, workers int) error {
	nv := s.nv
	curNew, nextNew := sc.maskCur, sc.maskNext
	frontier, next := sc.stack, sc.next
	for v := 0; v < nv; v++ {
		good[v] = p.FinalMask
		curNew[v] = p.FinalMask
		frontier = append(frontier, uint64(v))
	}
	for len(frontier) > 0 {
		if err := ctx.Err(); err != nil {
			// At a level boundary every pending mask lives in curNew under
			// a frontier entry; zero them so the scratch pools clean.
			for _, vi := range frontier {
				curNew[vi] = 0
			}
			sc.stack, sc.next = frontier[:0], next[:0]
			return err
		}
		if len(frontier) < selectParallelMinFrontier {
			next = s.relaxMasked(p, nq, good, curNew, nextNew, frontier, next, false)
		} else {
			cn, nn := curNew, nextNew
			next = relaxSharded(sc, frontier, next, workers, func(part, buf []uint64) []uint64 {
				return s.relaxMasked(p, nq, good, cn, nn, part, buf, true)
			})
		}
		frontier, next = next, frontier[:0]
		curNew, nextNew = nextNew, curNew
	}
	sc.stack, sc.next = frontier, next
	return nil
}

// relaxSharded expands one level-synchronous frontier across worker
// shards: the frontier is chunked over the workers, each relaxing its
// part into a reused per-shard buffer (marking must be atomic inside
// relax), and the shard results are merged into next after the barrier.
func relaxSharded(sc *productScratch, frontier, next []uint64, workers int, relax func(part, buf []uint64) []uint64) []uint64 {
	if len(sc.shards) < workers {
		sc.shards = make([][]uint64, workers)
	}
	chunk := (len(frontier) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(frontier) {
			hi = len(frontier)
		}
		if lo >= hi {
			sc.shards[w] = sc.shards[w][:0]
			continue
		}
		wg.Add(1)
		go func(w int, part []uint64) {
			defer wg.Done()
			sc.shards[w] = relax(part, sc.shards[w][:0])
		}(w, frontier[lo:hi])
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		next = append(next, sc.shards[w]...)
	}
	return next
}

// relaxMasked expands one deduplicated frontier level of the mask-based
// backward BFS: each entry is a node whose pending mask curNew[v] holds
// the states marked good there last level (consumed and cleared here).
// Nodes gaining their first new state this level are appended to next,
// with the state bits accumulating in nextNew. With atomicMark=true,
// marking uses atomic-or so concurrent shards observe each transition
// exactly once.
func (s *Snapshot) relaxMasked(p *plan.Plan, nq int, good, curNew, nextNew bitset.Bits, frontier, next []uint64, atomicMark bool) []uint64 {
	ci := &s.in
	predMask := p.PredMask
	for _, vi := range frontier {
		v := NodeID(vi)
		m := curNew[v]
		curNew[v] = 0
		rs := ci.segs(v)
		for si := range rs.syms {
			sym := int(rs.syms[si])
			if sym >= p.NumSyms {
				continue
			}
			base := sym * nq
			var pm uint64
			for mm := m; mm != 0; mm &= mm - 1 {
				pm |= predMask[base+bits.TrailingZeros64(mm)]
			}
			if pm == 0 {
				continue
			}
			edges := rs.edges[rs.offs[si]:rs.offs[si+1]]
			for _, e := range edges {
				if atomicMark {
					old := orWord(&good[e.To], pm)
					if add := pm &^ old; add != 0 {
						if orWord(&nextNew[e.To], add) == 0 {
							next = append(next, uint64(e.To))
						}
					}
				} else if add := pm &^ good[e.To]; add != 0 {
					good[e.To] |= add
					if nextNew[e.To] == 0 {
						next = append(next, uint64(e.To))
					}
					nextNew[e.To] |= add
				}
			}
		}
	}
	return next
}

// Covers reports whether L(d) ∩ paths_G(ν) ≠ ∅ for a single node.
func (g *Graph) Covers(d *automata.DFA, nu NodeID) bool {
	return g.reader().CoversAny(d, []NodeID{nu})
}

// Covers is the compatibility form of CoversPlan for a raw DFA.
func (s *Snapshot) Covers(d *automata.DFA, nu NodeID) bool {
	return s.CoversAny(d, []NodeID{nu})
}

// CoversPlan reports whether L(p) ∩ paths_G(ν) ≠ ∅ for a single node,
// with an early-exit forward search from (ν, p.Start).
func (s *Snapshot) CoversPlan(p *plan.Plan, nu NodeID) bool {
	return s.CoversAnyPlan(p, []NodeID{nu})
}

// CoversAny reports whether L(d) ∩ paths_G(X) ≠ ∅: some node of X has a
// path in L(d).
func (g *Graph) CoversAny(d *automata.DFA, set []NodeID) bool {
	return g.reader().CoversAny(d, set)
}

// CoversAny is the compatibility form of CoversAnyPlan for a raw DFA.
func (s *Snapshot) CoversAny(d *automata.DFA, set []NodeID) bool {
	return s.CoversAnyPlan(plan.FromDFA(d), set)
}

// CoversAnyPlan reports whether L(p) ∩ paths_G(X) ≠ ∅: some node of X has
// a path in L(p). This is the learner's consistency primitive — with
// X = S− it decides whether a candidate generalization selects a negative
// example. Start nodes without an out-edge labeled by a viable first
// symbol are skipped before any product pair is materialized.
func (s *Snapshot) CoversAnyPlan(p *plan.Plan, set []NodeID) bool {
	if len(set) == 0 || p.Empty() {
		return false
	}
	if p.AcceptsEpsilon() {
		return true // ε ∈ paths_G(ν) for every ν
	}
	nq := p.NumStates
	sc := s.getProduct(s.nv * nq)
	defer s.putProductSparse(sc)
	stack := sc.stack
	for _, v := range set {
		if !s.hasFirstSymEdge(p, v) {
			continue
		}
		idx := int(v)*nq + int(p.Start)
		if sc.bits.TrySet(idx) {
			sc.touched = append(sc.touched, uint64(idx))
			stack = append(stack, uint64(idx))
		}
	}
	found := false
	co := &s.out
	for len(stack) > 0 {
		idx := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v := NodeID(idx / uint64(nq))
		q := int32(idx % uint64(nq))
		if p.Final[q] {
			found = true
			break
		}
		stack = s.expandForwardPlan(p, co, v, q, nq, sc, stack)
	}
	sc.stack = stack
	return found
}

// hasFirstSymEdge reports whether v has an out-edge whose symbol can start
// an accepted word — the plan's first-symbol filter applied to the node's
// CSR segment list (no edges are touched).
func (s *Snapshot) hasFirstSymEdge(p *plan.Plan, v NodeID) bool {
	for _, sym := range s.out.segs(v).syms {
		if int(sym) < p.NumSyms && p.FirstSym[sym] {
			return true
		}
	}
	return false
}

// expandForwardPlan pushes the unvisited forward product successors of
// (v, q): out-segment symbols look up the plan's flat transition table
// once, then mark every neighbor in the contiguous segment. Transitions
// into non-live states (no final reachable) are pruned.
func (s *Snapshot) expandForwardPlan(p *plan.Plan, co *adj, v NodeID, q int32, nq int, sc *productScratch, stack []uint64) []uint64 {
	base := int(q) * p.NumSyms
	rs := co.segs(v)
	for si := range rs.syms {
		sym := int(rs.syms[si])
		if sym >= p.NumSyms {
			continue
		}
		t := p.Delta[base+sym]
		if t == plan.None || !p.Live[t] {
			continue
		}
		tb := int(t)
		for _, e := range rs.edges[rs.offs[si]:rs.offs[si+1]] {
			idx := int(e.To)*nq + tb
			if sc.bits.TrySet(idx) {
				sc.touched = append(sc.touched, uint64(idx))
				stack = append(stack, uint64(idx))
			}
		}
	}
	return stack
}

// CoversPair reports whether some path from u to v spells a word of L(d).
func (g *Graph) CoversPair(d *automata.DFA, u, v NodeID) bool {
	return g.reader().CoversPair(d, u, v)
}

// CoversPair is the compatibility form of CoversPairPlan for a raw DFA.
func (s *Snapshot) CoversPair(d *automata.DFA, u, v NodeID) bool {
	return s.CoversPairPlan(plan.FromDFA(d), u, v)
}

// CoversPairPlan reports whether some path from u to v spells a word of
// L(p) — the binary semantics of Appendix B: paths2_G(u,v) ∩ L(p) ≠ ∅.
// The accepting condition requires landing exactly on v in a final DFA
// state; ε is accepted only when u = v and the start is final.
//
// The search is bidirectional: a forward frontier grows from (u, Start)
// and a backward frontier from every (v, final) pair; per level the side
// whose frontier has the smaller CSR degree sum is expanded, and the pair
// is covered iff the frontiers meet. Either side exhausting first settles
// the answer — on skewed graphs (huge out-fanout from u, few paths into
// v) this is the classical direction-optimizing win over forward-only.
func (s *Snapshot) CoversPairPlan(p *plan.Plan, u, v NodeID) bool {
	if p.Empty() {
		return false
	}
	if u == v && p.AcceptsEpsilon() {
		return true
	}
	nq := p.NumStates
	sc := s.getProduct2(s.nv * nq)
	defer s.putProduct2Sparse(sc)

	ffront, fnext := sc.stack[:0], sc.next[:0]
	bfront, bnext := sc.stack2[:0], sc.next2[:0]
	// Runs before putProduct2Sparse (LIFO): the grown frontier buffers go
	// back into the scratch so the pool keeps their capacity.
	defer func() {
		sc.stack, sc.next, sc.stack2, sc.next2 = ffront, fnext, bfront, bnext
	}()

	fidx := int(u)*nq + int(p.Start)
	sc.bits.Set(fidx)
	sc.touched = append(sc.touched, uint64(fidx))
	ffront = append(ffront, uint64(fidx))
	fcost := s.OutDegree(u)

	for _, f := range p.Finals {
		if !p.Reach[f] {
			continue
		}
		bidx := int(v)*nq + int(f)
		if sc.bits.Get(bidx) {
			return true
		}
		if sc.bits2.TrySet(bidx) {
			sc.touched2 = append(sc.touched2, uint64(bidx))
			bfront = append(bfront, uint64(bidx))
		}
	}
	bcost := s.InDegree(v) * len(bfront)

	for len(ffront) > 0 && len(bfront) > 0 {
		if fcost <= bcost {
			var found bool
			fnext, fcost, found = s.relaxPlanForward(p, nq, sc, ffront, fnext, nil, false)
			if found {
				return true
			}
			ffront, fnext = fnext, ffront[:0]
		} else {
			var found bool
			bnext, bcost, found = s.relaxPlanBackward(p, nq, sc, bfront, bnext, true)
			if found {
				return true
			}
			bfront, bnext = bnext, bfront[:0]
		}
	}
	return false
}

// relaxPlanForward expands one level-synchronous forward frontier through
// the plan's flat Delta with Live pruning. Newly marked pairs accumulate
// into next along with the degree sum of their nodes (the cost of
// expanding the next level). When mk is non-nil, nodes discovered in a
// final state are collected into it (SelectBinaryFrom). When restrict is
// true, only pairs in the completed backward set (or accepting pairs) are
// entered — the pruned tail of the direction-optimizing evaluation. The
// found result reports a forward/backward frontier meeting (CoversPair;
// only when mk is nil).
func (s *Snapshot) relaxPlanForward(p *plan.Plan, nq int, sc *productScratch, frontier, next []uint64, mk *bitset.Marker, restrict bool) ([]uint64, int, bool) {
	co := &s.out
	cost := 0
	for _, idx := range frontier {
		v := NodeID(idx / uint64(nq))
		q := int32(idx % uint64(nq))
		base := int(q) * p.NumSyms
		rs := co.segs(v)
		for si := range rs.syms {
			sym := int(rs.syms[si])
			if sym >= p.NumSyms {
				continue
			}
			t := p.Delta[base+sym]
			if t == plan.None || !p.Live[t] {
				continue
			}
			tb := int(t)
			final := p.Final[t]
			for _, e := range rs.edges[rs.offs[si]:rs.offs[si+1]] {
				nidx := int(e.To)*nq + tb
				if restrict && !final && !sc.bits2.Get(nidx) {
					continue
				}
				if sc.bits.TrySet(nidx) {
					sc.touched = append(sc.touched, uint64(nidx))
					if mk != nil {
						if final {
							mk.TrySet(int(e.To))
						}
					} else if sc.bits2.Get(nidx) {
						return next, 0, true
					}
					next = append(next, uint64(nidx))
					cost += s.OutDegree(e.To)
				}
			}
		}
	}
	return next, cost, false
}

// relaxPlanBackward expands one level-synchronous backward frontier
// through the plan's packed reverse DFA with Reach pruning: for each pair
// (v, q), every in-edge (u, sym, v) combines with every reverse transition
// q --sym--> p into the predecessor pair (u, p). With meet=true a pair
// already in the forward visited set settles the search (CoversPair).
func (s *Snapshot) relaxPlanBackward(p *plan.Plan, nq int, sc *productScratch, frontier, next []uint64, meet bool) ([]uint64, int, bool) {
	ci := &s.in
	cost := 0
	for _, idx := range frontier {
		v := NodeID(idx / uint64(nq))
		q := int(idx % uint64(nq))
		rs := ci.segs(v)
		for si := range rs.syms {
			sym := int(rs.syms[si])
			if sym >= p.NumSyms {
				continue
			}
			k := sym*nq + q
			preds := p.RevPred[p.RevOff[k]:p.RevOff[k+1]]
			if len(preds) == 0 {
				continue
			}
			tails := rs.edges[rs.offs[si]:rs.offs[si+1]]
			for _, pr := range preds {
				if !p.Reach[pr] {
					continue
				}
				base := int(pr)
				for _, e := range tails {
					nidx := int(e.To)*nq + base
					if sc.bits2.TrySet(nidx) {
						sc.touched2 = append(sc.touched2, uint64(nidx))
						if meet && sc.bits.Get(nidx) {
							return next, 0, true
						}
						next = append(next, uint64(nidx))
						cost += s.InDegree(e.To)
					}
				}
			}
		}
	}
	return next, cost, false
}

// SelectBinaryFrom returns all v such that (u, v) is selected by d under
// binary semantics, in increasing id order.
func (g *Graph) SelectBinaryFrom(d *automata.DFA, u NodeID) []NodeID {
	return g.reader().SelectBinaryFrom(d, u)
}

// SelectBinaryFrom is the compatibility form of SelectBinaryFromPlan for a
// raw DFA.
func (s *Snapshot) SelectBinaryFrom(d *automata.DFA, u NodeID) []NodeID {
	return s.SelectBinaryFromPlan(plan.FromDFA(d), u)
}

// SelectBinaryFromPlan returns all v such that (u, v) is selected by p
// under binary semantics, in increasing id order.
//
// Evaluation is direction-optimizing. Forward levels expand from
// (u, Start), collecting nodes discovered in a final state. Whenever the
// estimated cost of the next forward level exceeds the remaining cost of
// the backward side — seeded from every accepting pair via the plan's
// last-symbol filter and per-symbol edge counts, i.e. CSR degree prefix
// sums — a backward level runs instead. Once the backward side completes,
// its visited set is exactly the co-accepting region, and the remaining
// forward work is pruned to it: every pair entered from then on lies on a
// path to some answer.
func (s *Snapshot) SelectBinaryFromPlan(p *plan.Plan, u NodeID) []NodeID {
	nodes, _ := s.selectBinaryFrom(context.Background(), p, u, true)
	return nodes
}

// SelectBinaryFromPlanCtx is SelectBinaryFromPlan honoring ctx:
// cancellation is checked once per expansion level, and a canceled or
// deadline-exceeded evaluation returns ctx.Err() with a nil node list.
func (s *Snapshot) SelectBinaryFromPlanCtx(ctx context.Context, p *plan.Plan, u NodeID) ([]NodeID, error) {
	return s.selectBinaryFrom(ctx, p, u, true)
}

// SelectBinaryFromForward is SelectBinaryFromPlan with the backward side
// disabled — the forward-only evaluation every level-synchronous RPQ
// engine runs. Exposed as the baseline the direction-optimizing benchmark
// and tests compare against; production callers use SelectBinaryFromPlan.
func (s *Snapshot) SelectBinaryFromForward(p *plan.Plan, u NodeID) []NodeID {
	nodes, _ := s.selectBinaryFrom(context.Background(), p, u, false)
	return nodes
}

func (s *Snapshot) selectBinaryFrom(ctx context.Context, p *plan.Plan, u NodeID, directional bool) ([]NodeID, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if p.Empty() {
		return nil, nil
	}
	nq := p.NumStates
	sc := s.getProduct2(s.nv * nq)
	defer s.putProduct2Sparse(sc)
	hits := s.getStep()
	defer s.putStep(hits)
	mk := bitset.NewMarker(hits.nodes)

	fidx := int(u)*nq + int(p.Start)
	sc.bits.Set(fidx)
	sc.touched = append(sc.touched, uint64(fidx))
	ffront := append(sc.stack[:0], uint64(fidx))
	fnext := sc.next[:0]
	if p.AcceptsEpsilon() {
		mk.TrySet(int(u))
	}
	fcost := s.OutDegree(u)

	// Backward side, engaged lazily: phase 0 = not started (bcost is the
	// estimated cost of the seeding sweep), 1 = running, 2 = complete.
	bfront, bnext := sc.stack2[:0], sc.next2[:0]
	// Runs before putProduct2Sparse (LIFO): the grown frontier buffers go
	// back into the scratch so the pool keeps their capacity.
	defer func() {
		sc.stack, sc.next, sc.stack2, sc.next2 = ffront, fnext, bfront, bnext
	}()
	bPhase := 0
	bcost := s.nv
	for sym, ok := range p.LastSym {
		if ok && sym < len(s.inSymCount) {
			bcost += int(s.inSymCount[sym])
		}
	}

	for len(ffront) > 0 {
		if err := ctx.Err(); err != nil {
			mk.Drain(func(int) {}) // leave the step scratch clean
			return nil, err
		}
		if directional && bPhase != 2 && bcost < fcost {
			if bPhase == 0 {
				bfront, bcost = s.seedBackwardAll(p, nq, sc, bfront)
				bPhase = 1
			} else {
				bnext, bcost, _ = s.relaxPlanBackward(p, nq, sc, bfront, bnext, false)
				bfront, bnext = bnext, bfront[:0]
			}
			if len(bfront) == 0 {
				bPhase = 2
			}
			continue
		}
		fnext, fcost, _ = s.relaxPlanForward(p, nq, sc, ffront, fnext, &mk, bPhase == 2)
		ffront, fnext = fnext, ffront[:0]
	}

	if mk.Count() == 0 {
		return nil, nil
	}
	out := make([]NodeID, 0, mk.Count())
	mk.Drain(func(i int) { out = append(out, NodeID(i)) })
	return out, nil
}

// seedBackwardAll runs the backward seeding sweep of SelectBinaryFromPlan:
// the level-1 relax of every accepting pair (x, f), f final, folded into
// one pass over all in-segments labeled by a last symbol. The per-symbol
// union of the finals' reverse predecessors (the packed analogue of the
// plan's FinalPredMask) is call-invariant, so it is built once up front
// instead of re-deriving the buckets per segment. Accepting pairs
// themselves are never materialized in the backward visited set — the
// forward pruning treats final states as co-accepting by definition.
func (s *Snapshot) seedBackwardAll(p *plan.Plan, nq int, sc *productScratch, front []uint64) ([]uint64, int) {
	// finalPreds[sym]: deduplicated Reach-filtered predecessors of any
	// reachable final state on sym; nil for non-last symbols.
	finalPreds := make([][]int32, p.NumSyms)
	seen := make([]bool, nq)
	for sym := 0; sym < p.NumSyms; sym++ {
		if !p.LastSym[sym] {
			continue
		}
		var preds []int32
		for _, f := range p.Finals {
			if !p.Reach[f] {
				continue
			}
			k := sym*nq + int(f)
			for _, pr := range p.RevPred[p.RevOff[k]:p.RevOff[k+1]] {
				if p.Reach[pr] && !seen[pr] {
					seen[pr] = true
					preds = append(preds, pr)
				}
			}
		}
		for _, pr := range preds {
			seen[pr] = false
		}
		finalPreds[sym] = preds
	}

	ci := &s.in
	cost := 0
	for w := 0; w < s.nv; w++ {
		rs := ci.segs(NodeID(w))
		for si := range rs.syms {
			sym := int(rs.syms[si])
			if sym >= p.NumSyms {
				continue
			}
			preds := finalPreds[sym]
			if len(preds) == 0 {
				continue
			}
			tails := rs.edges[rs.offs[si]:rs.offs[si+1]]
			for _, pr := range preds {
				base := int(pr)
				for _, e := range tails {
					nidx := int(e.To)*nq + base
					if sc.bits2.TrySet(nidx) {
						sc.touched2 = append(sc.touched2, uint64(nidx))
						front = append(front, uint64(nidx))
						cost += s.InDegree(e.To)
					}
				}
			}
		}
	}
	return front, cost
}

// PathsIncluded decides paths_G(left) ⊆ paths_G(right) exactly, via a
// subset construction on the right side: it searches for a word matched
// from left whose right-coverage set becomes empty. Both languages are
// prefix-closed with every state accepting, so inclusion fails exactly when
// such a word exists. The worst case is exponential in |right| — this is
// the PSPACE-hard core of consistency checking (Lemma 3.2) and node
// informativeness (Lemma 4.2); callers use it on small graphs or fall back
// to the k-bounded variant below.
func (g *Graph) PathsIncluded(left, right []NodeID) bool {
	return g.reader().PathsIncluded(left, right)
}

// PathsIncluded decides paths_G(left) ⊆ paths_G(right) exactly on this
// epoch snapshot; see the Graph form for complexity caveats.
func (s *Snapshot) PathsIncluded(left, right []NodeID) bool {
	_, included := s.firstEscaping(left, right, -1)
	return included
}

// FirstEscapingPath returns the canonical-order minimal word in
// paths_G(left) \ paths_G(right), with ok=false when inclusion holds
// (no such word). Depth < 0 means unbounded.
func (g *Graph) FirstEscapingPath(left, right []NodeID, depth int) (words.Word, bool) {
	w, included := g.reader().firstEscaping(left, right, depth)
	return w, !included
}

// firstEscaping runs the shared canonical-order witness search (WitnessBFS)
// over pairs (left node, right subset); the first word whose right subset
// is empty escapes. depth < 0 means unbounded (termination is still
// guaranteed: the product state space is finite). Right subsets are
// interned to dense ids via NodeSetIndex with memoized (set, symbol)
// transitions, so each distinct subset is stepped once per symbol instead
// of re-encoded per edge.
func (s *Snapshot) firstEscaping(left, right []NodeID, depth int) (words.Word, bool) {
	rightStart := dedupNodes(right)
	if len(rightStart) == 0 {
		// Right side covers nothing: even ε is uncovered when the right
		// node set is empty, for any left node.
		if len(left) > 0 {
			return words.Epsilon, false
		}
		return nil, true
	}
	ix := NewNodeSetIndex()
	startSet := ix.Intern(rightStart)
	trans := make(map[uint64]int32) // (set, sym) -> stepped set id
	leftStart := dedupNodes(left)
	starts := make([][2]int32, len(leftStart))
	for i, v := range leftStart {
		starts[i] = [2]int32{v, startSet}
	}
	co := &s.out
	w, escaped := WitnessBFS(depth, starts,
		func(_, set int32) bool { return len(ix.Set(set)) == 0 },
		func(v, set int32, emit func(sym alphabet.Symbol, a2, b2 int32)) {
			rs := co.segs(v)
			for si := range rs.syms {
				sym := rs.syms[si]
				tk := uint64(uint32(set))<<32 | uint64(sym)
				ns, ok := trans[tk]
				if !ok {
					ns = ix.Intern(s.Step(ix.Set(set), sym))
					trans[tk] = ns
				}
				for _, e := range rs.edges[rs.offs[si]:rs.offs[si+1]] {
					emit(sym, e.To, ns)
				}
			}
		})
	return w, !escaped
}

// dedupNodes returns a sorted, deduplicated copy of set.
func dedupNodes(set []NodeID) []NodeID {
	out := append([]NodeID(nil), set...)
	slices.Sort(out)
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

// AsNFA materializes the graph as an NFA with the given start nodes and
// every state accepting — the explicit form of paths_G(starts). Useful for
// tests cross-checking product algorithms against the automata package.
func (g *Graph) AsNFA(starts []NodeID) *automata.NFA {
	return g.reader().AsNFA(starts)
}

// AsNFA materializes the snapshot as an NFA with the given start nodes and
// every state accepting.
func (s *Snapshot) AsNFA(starts []NodeID) *automata.NFA {
	n := automata.NewNFA(s.nv, s.nsym)
	for v := 0; v < s.nv; v++ {
		n.Final[v] = true
		for _, e := range s.out.row(NodeID(v)) {
			n.AddTransition(NodeID(v), e.Sym, e.To)
		}
	}
	n.Starts = append([]int32(nil), starts...)
	return n
}
