package graph

import (
	"sort"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/words"
)

// This file implements the product constructions between a graph and a
// query DFA that power both query evaluation (Section 2: q(G) = {ν |
// L(q) ∩ paths_G(ν) ≠ ∅}) and the learner's consistency checks (lines 4-6
// of Algorithm 1). All of them run in O(|E| · |Q|) — the polynomial
// emptiness-of-intersection the paper cites (Lange & Rossmanith).

// SelectMonadic returns the per-node selection vector of the query DFA d
// under monadic semantics: selected[ν] iff L(d) ∩ paths_G(ν) ≠ ∅.
//
// It marks product pairs (node, state) from which an accepting state is
// reachable, by backward propagation from every (node, final) pair, then
// reads off pairs (ν, start).
func (g *Graph) SelectMonadic(d *automata.DFA) []bool {
	g.ensureSorted()
	nv, nq := g.NumNodes(), d.NumStates()
	// DFA reverse transitions: revD[sym][q] = predecessors p with δ(p,sym)=q.
	revD := make([][][]int32, d.NumSyms)
	for sym := range revD {
		revD[sym] = make([][]int32, nq)
	}
	for p := 0; p < nq; p++ {
		for sym := 0; sym < d.NumSyms; sym++ {
			if q := d.Delta[p][sym]; q != automata.None {
				revD[sym][q] = append(revD[sym][q], int32(p))
			}
		}
	}
	good := make([]bool, nv*nq)
	idx := func(v NodeID, q int32) int { return int(v)*nq + int(q) }
	type pair struct {
		v NodeID
		q int32
	}
	var queue []pair
	for q := int32(0); q < int32(nq); q++ {
		if !d.Final[q] {
			continue
		}
		for v := NodeID(0); v < NodeID(nv); v++ {
			good[idx(v, q)] = true
			queue = append(queue, pair{v, q})
		}
	}
	for len(queue) > 0 {
		cur := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// Predecessors in the product: in-edge (u, sym, cur.v) combined with
		// DFA transition p --sym--> cur.q.
		for _, e := range g.in[cur.v] {
			if int(e.Sym) >= d.NumSyms {
				continue
			}
			for _, p := range revD[e.Sym][cur.q] {
				if !good[idx(e.To, p)] {
					good[idx(e.To, p)] = true
					queue = append(queue, pair{e.To, p})
				}
			}
		}
	}
	selected := make([]bool, nv)
	for v := 0; v < nv; v++ {
		selected[v] = good[idx(NodeID(v), d.Start)]
	}
	return selected
}

// Covers reports whether L(d) ∩ paths_G(ν) ≠ ∅ for a single node, with an
// early-exit forward search from (ν, d.Start).
func (g *Graph) Covers(d *automata.DFA, nu NodeID) bool {
	return g.CoversAny(d, []NodeID{nu})
}

// CoversAny reports whether L(d) ∩ paths_G(X) ≠ ∅: some node of X has a
// path in L(d). This is the learner's consistency primitive — with X = S−
// it decides whether a candidate generalization selects a negative example.
func (g *Graph) CoversAny(d *automata.DFA, set []NodeID) bool {
	g.ensureSorted()
	nq := d.NumStates()
	seen := make(map[int]bool, len(set)*2)
	idx := func(v NodeID, q int32) int { return int(v)*nq + int(q) }
	type pair struct {
		v NodeID
		q int32
	}
	var stack []pair
	push := func(v NodeID, q int32) {
		i := idx(v, q)
		if !seen[i] {
			seen[i] = true
			stack = append(stack, pair{v, q})
		}
	}
	for _, v := range set {
		push(v, d.Start)
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.Final[cur.q] {
			return true
		}
		for _, e := range g.out[cur.v] {
			if int(e.Sym) >= d.NumSyms {
				continue
			}
			if nq := d.Delta[cur.q][e.Sym]; nq != automata.None {
				push(e.To, nq)
			}
		}
	}
	return false
}

// CoversPair reports whether some path from u to v spells a word of L(d) —
// the binary semantics of Appendix B: w ∈ paths2_G(u,v) ∩ L(d) ≠ ∅.
// Note that the accepting condition requires landing exactly on v in a
// final DFA state; ε is accepted only when u = v and the start is final.
func (g *Graph) CoversPair(d *automata.DFA, u, v NodeID) bool {
	g.ensureSorted()
	nq := d.NumStates()
	seen := make(map[int]bool)
	idx := func(x NodeID, q int32) int { return int(x)*nq + int(q) }
	type pair struct {
		x NodeID
		q int32
	}
	var stack []pair
	push := func(x NodeID, q int32) {
		i := idx(x, q)
		if !seen[i] {
			seen[i] = true
			stack = append(stack, pair{x, q})
		}
	}
	push(u, d.Start)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if cur.x == v && d.Final[cur.q] {
			return true
		}
		for _, e := range g.out[cur.x] {
			if int(e.Sym) >= d.NumSyms {
				continue
			}
			if nq := d.Delta[cur.q][e.Sym]; nq != automata.None {
				push(e.To, nq)
			}
		}
	}
	return false
}

// SelectBinaryFrom returns all v such that (u, v) is selected by d under
// binary semantics, in increasing id order.
func (g *Graph) SelectBinaryFrom(d *automata.DFA, u NodeID) []NodeID {
	g.ensureSorted()
	nq := d.NumStates()
	seen := make(map[int]bool)
	idx := func(x NodeID, q int32) int { return int(x)*nq + int(q) }
	type pair struct {
		x NodeID
		q int32
	}
	var stack []pair
	push := func(x NodeID, q int32) {
		i := idx(x, q)
		if !seen[i] {
			seen[i] = true
			stack = append(stack, pair{x, q})
		}
	}
	push(u, d.Start)
	hit := make(map[NodeID]bool)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if d.Final[cur.q] {
			hit[cur.x] = true
		}
		for _, e := range g.out[cur.x] {
			if int(e.Sym) >= d.NumSyms {
				continue
			}
			if nq := d.Delta[cur.q][e.Sym]; nq != automata.None {
				push(e.To, nq)
			}
		}
	}
	out := make([]NodeID, 0, len(hit))
	for v := range hit {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PathsIncluded decides paths_G(left) ⊆ paths_G(right) exactly, via a
// subset construction on the right side: it searches for a word matched
// from left whose right-coverage set becomes empty. Both languages are
// prefix-closed with every state accepting, so inclusion fails exactly when
// such a word exists. The worst case is exponential in |right| — this is
// the PSPACE-hard core of consistency checking (Lemma 3.2) and node
// informativeness (Lemma 4.2); callers use it on small graphs or fall back
// to the k-bounded variant below.
func (g *Graph) PathsIncluded(left, right []NodeID) bool {
	_, included := g.firstEscaping(left, right, -1)
	return included
}

// FirstEscapingPath returns the canonical-order minimal word in
// paths_G(left) \ paths_G(right), with ok=false when inclusion holds
// (no such word). Depth < 0 means unbounded.
func (g *Graph) FirstEscapingPath(left, right []NodeID, depth int) (words.Word, bool) {
	w, included := g.firstEscaping(left, right, depth)
	return w, !included
}

// firstEscaping runs the canonical-order BFS over pairs (left node, right
// subset); returns the first word whose right subset is empty. depth < 0
// means unbounded (termination is still guaranteed: the product state
// space is finite).
func (g *Graph) firstEscaping(left, right []NodeID, depth int) (words.Word, bool) {
	g.ensureSorted()
	rightStart := dedupNodes(right)
	type state struct {
		v    NodeID
		set  []NodeID
		word words.Word
	}
	if len(rightStart) == 0 {
		// Right side covers nothing beyond... even ε is uncovered when the
		// right node set is empty, for any left node.
		if len(left) > 0 {
			return words.Epsilon, false
		}
		return nil, true
	}
	seen := make(map[string]bool)
	key := func(v NodeID, set []NodeID) string {
		b := make([]byte, 0, (len(set)+1)*4)
		for _, x := range append([]NodeID{v}, set...) {
			b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
		}
		return string(b)
	}
	var queue []state
	for _, v := range dedupNodes(left) {
		k := key(v, rightStart)
		if !seen[k] {
			seen[k] = true
			queue = append(queue, state{v, rightStart, words.Epsilon})
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if len(cur.set) == 0 {
			return cur.word, false
		}
		if depth >= 0 && len(cur.word) >= depth {
			continue
		}
		for _, e := range g.out[cur.v] {
			ns := g.Step(cur.set, e.Sym)
			k := key(e.To, ns)
			if !seen[k] {
				seen[k] = true
				queue = append(queue, state{e.To, ns, words.Append(cur.word, e.Sym)})
			}
		}
	}
	return nil, true
}

// dedupNodes returns a sorted, deduplicated copy of set.
func dedupNodes(set []NodeID) []NodeID {
	out := append([]NodeID(nil), set...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	n := 0
	for i, v := range out {
		if i == 0 || v != out[n-1] {
			out[n] = v
			n++
		}
	}
	return out[:n]
}

// AsNFA materializes the graph as an NFA with the given start nodes and
// every state accepting — the explicit form of paths_G(starts). Useful for
// tests cross-checking product algorithms against the automata package.
func (g *Graph) AsNFA(starts []NodeID) *automata.NFA {
	g.ensureSorted()
	n := automata.NewNFA(g.NumNodes(), g.alpha.Size())
	for v := 0; v < g.NumNodes(); v++ {
		n.Final[v] = true
		for _, e := range g.out[v] {
			n.AddTransition(NodeID(v), alphabet.Symbol(e.Sym), e.To)
		}
	}
	n.Starts = append([]int32(nil), starts...)
	return n
}
