package graph_test

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/graph"
	"pathquery/internal/paperfix"
	"pathquery/internal/regex"
	"pathquery/internal/words"
)

func mustNode(t *testing.T, g *graph.Graph, name string) graph.NodeID {
	t.Helper()
	id, ok := g.NodeByName(name)
	if !ok {
		t.Fatalf("node %q missing", name)
	}
	return id
}

func wordOf(t *testing.T, g *graph.Graph, labels ...string) words.Word {
	t.Helper()
	w := make(words.Word, len(labels))
	for i, l := range labels {
		sym, ok := g.Alphabet().Lookup(l)
		if !ok {
			t.Fatalf("label %q missing", l)
		}
		w[i] = sym
	}
	return w
}

func compileOn(t *testing.T, g *graph.Graph, src string) *automata.DFA {
	t.Helper()
	n, err := regex.Parse(g.Alphabet(), src)
	if err != nil {
		t.Fatal(err)
	}
	return automata.CompileRegex(n, g.Alphabet().Size())
}

func TestAddNodeIdempotent(t *testing.T) {
	g := graph.New(nil)
	a := g.AddNode("x")
	b := g.AddNode("x")
	if a != b {
		t.Fatalf("AddNode not idempotent: %d vs %d", a, b)
	}
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
}

func TestOutEdgesSorted(t *testing.T) {
	g := graph.New(alphabet.NewSorted("a", "b", "c"))
	g.AddEdgeByName("x", "c", "y")
	g.AddEdgeByName("x", "a", "z")
	g.AddEdgeByName("x", "b", "y")
	x := mustNode(t, g, "x")
	es := g.OutEdges(x)
	for i := 1; i < len(es); i++ {
		if es[i-1].Sym > es[i].Sym {
			t.Fatalf("out edges not sorted: %v", es)
		}
	}
}

func TestPaperG0PathClaims(t *testing.T) {
	g, _ := paperfix.G0()
	v1 := mustNode(t, g, "v1")
	v3 := mustNode(t, g, "v3")
	v5 := mustNode(t, g, "v5")

	// "aba matches ν1ν2ν3ν4 and ν3ν2ν3ν4" — at least, aba ∈ paths(ν1) and
	// paths(ν3).
	aba := wordOf(t, g, "a", "b", "a")
	if !g.Matches(v1, aba) || !g.Matches(v3, aba) {
		t.Fatal("aba should match from v1 and v3")
	}
	// paths(ν5) = {ε, a, b} (adapted; see paperfix docs).
	got := g.PathsUpTo(v5, 10, 0)
	want := []string{"ε", "a", "b"}
	if len(got) != len(want) {
		t.Fatalf("paths(v5) = %d words, want %d", len(got), len(want))
	}
	for i := range got {
		if words.String(got[i], g.Alphabet()) != want[i] {
			t.Fatalf("paths(v5)[%d] = %v", i, words.String(got[i], g.Alphabet()))
		}
	}
	// paths(ν1) is infinite: a cycle is reachable from ν1.
	if !g.HasCycleFrom(v1) {
		t.Fatal("paths(v1) should be infinite")
	}
	if g.HasCycleFrom(v5) {
		t.Fatal("paths(v5) is finite")
	}
}

func TestPaperG0QuerySemantics(t *testing.T) {
	g, _ := paperfix.G0()
	// "the query a selects all nodes except ν4".
	sel := g.SelectMonadic(compileOn(t, g, "a"))
	for v := 0; v < g.NumNodes(); v++ {
		want := g.NodeName(graph.NodeID(v)) != "v4"
		if sel[v] != want {
			t.Errorf("query a on %s = %v, want %v", g.NodeName(graph.NodeID(v)), sel[v], want)
		}
	}
	// "the query (a·b)*·c selects the nodes ν1 and ν3".
	sel = g.SelectMonadic(compileOn(t, g, "(a·b)*·c"))
	for v := 0; v < g.NumNodes(); v++ {
		name := g.NodeName(graph.NodeID(v))
		want := name == "v1" || name == "v3"
		if sel[v] != want {
			t.Errorf("(a·b)*·c on %s = %v, want %v", name, sel[v], want)
		}
	}
	// "the query b·b·c·c selects no node".
	sel = g.SelectMonadic(compileOn(t, g, "b·b·c·c"))
	for v, s := range sel {
		if s {
			t.Errorf("b·b·c·c selects %s", g.NodeName(graph.NodeID(v)))
		}
	}
}

func TestFigure1QuerySemantics(t *testing.T) {
	g, s := paperfix.Figure1()
	sel := g.SelectMonadic(compileOn(t, g, "(tram+bus)*·cinema"))
	want := map[string]bool{"N1": true, "N2": true, "N4": true, "N6": true}
	for v := 0; v < g.NumNodes(); v++ {
		name := g.NodeName(graph.NodeID(v))
		if sel[v] != want[name] {
			t.Errorf("query on %s = %v, want %v", name, sel[v], want[name])
		}
	}
	// The sample's positives are selected, negatives are not.
	for _, p := range s.Pos {
		if !sel[p] {
			t.Errorf("positive %s not selected", g.NodeName(p))
		}
	}
	for _, n := range s.Neg {
		if sel[n] {
			t.Errorf("negative %s selected", g.NodeName(n))
		}
	}
}

func TestCoversMatchesSelectMonadic(t *testing.T) {
	// Covers (single-node forward check) must agree with SelectMonadic
	// (all-nodes backward pass) on random graphs and queries.
	rng := rand.New(rand.NewSource(5))
	alpha := alphabet.NewSorted("a", "b", "c")
	for iter := 0; iter < 50; iter++ {
		g := randomGraph(rng, alpha, 12, 30)
		d := automata.RandomNonEmptyDFA(rng, 5, alpha.Size(), 0.6)
		sel := g.SelectMonadic(d)
		for v := 0; v < g.NumNodes(); v++ {
			if got := g.Covers(d, graph.NodeID(v)); got != sel[v] {
				t.Fatalf("iter %d: Covers(%d) = %v, SelectMonadic = %v", iter, v, got, sel[v])
			}
		}
	}
}

func randomGraph(rng *rand.Rand, alpha *alphabet.Alphabet, nodes, edges int) *graph.Graph {
	g := graph.New(alpha)
	for i := 0; i < nodes; i++ {
		g.AddNode(nodeName(i))
	}
	for i := 0; i < edges; i++ {
		from := graph.NodeID(rng.Intn(nodes))
		to := graph.NodeID(rng.Intn(nodes))
		sym := alphabet.Symbol(rng.Intn(alpha.Size()))
		g.AddEdge(from, sym, to)
	}
	return g
}

func nodeName(i int) string {
	return "n" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func TestSelectMonadicAgainstPathEnumeration(t *testing.T) {
	// Cross-check the product construction against brute-force enumeration
	// of bounded paths on acyclic-ish graphs.
	rng := rand.New(rand.NewSource(9))
	alpha := alphabet.NewSorted("a", "b")
	for iter := 0; iter < 40; iter++ {
		g := graph.New(alpha)
		const n = 8
		for i := 0; i < n; i++ {
			g.AddNode(nodeName(i))
		}
		// Forward-only edges: acyclic, so paths are finite and short.
		for i := 0; i < 16; i++ {
			from := rng.Intn(n - 1)
			to := from + 1 + rng.Intn(n-from-1)
			g.AddEdge(graph.NodeID(from), alphabet.Symbol(rng.Intn(2)), graph.NodeID(to))
		}
		d := automata.RandomNonEmptyDFA(rng, 4, 2, 0.7)
		sel := g.SelectMonadic(d)
		for v := 0; v < n; v++ {
			brute := false
			for _, w := range g.PathsUpTo(graph.NodeID(v), n, 0) {
				if d.Accepts(w) {
					brute = true
					break
				}
			}
			if sel[v] != brute {
				t.Fatalf("iter %d node %d: product %v, brute %v", iter, v, sel[v], brute)
			}
		}
	}
}

func TestCoversAnyIsUnionOfCovers(t *testing.T) {
	g, s := paperfix.G0()
	d := compileOn(t, g, "(a·b)*·c")
	if g.CoversAny(d, s.Neg) {
		t.Fatal("(a·b)*·c should not cover any negative")
	}
	if !g.CoversAny(d, s.Pos) {
		t.Fatal("(a·b)*·c should cover positives")
	}
	if g.CoversAny(d, nil) {
		t.Fatal("empty set covers nothing")
	}
}

func TestCoversPairBinarySemantics(t *testing.T) {
	g, _ := paperfix.Figure1()
	n2 := mustNode(t, g, "N2")
	c1 := mustNode(t, g, "C1")
	c2 := mustNode(t, g, "C2")
	d := compileOn(t, g, "(tram+bus)*·cinema")
	if !g.CoversPair(d, n2, c1) {
		t.Fatal("N2 reaches C1 via bus·tram·cinema")
	}
	if g.CoversPair(d, n2, c2) {
		t.Fatal("N2 cannot reach C2")
	}
	// ε only relates a node to itself when the query accepts ε.
	eps := compileOn(t, g, "ε")
	if !g.CoversPair(eps, n2, n2) {
		t.Fatal("ε should relate N2 to itself")
	}
	if g.CoversPair(eps, n2, c1) {
		t.Fatal("ε should not relate distinct nodes")
	}
}

func TestSelectBinaryFrom(t *testing.T) {
	g, _ := paperfix.Figure1()
	n2 := mustNode(t, g, "N2")
	d := compileOn(t, g, "(tram+bus)*·cinema")
	got := g.SelectBinaryFrom(d, n2)
	var names []string
	for _, v := range got {
		names = append(names, g.NodeName(v))
	}
	sort.Strings(names)
	if len(names) != 1 || names[0] != "C1" {
		t.Fatalf("SelectBinaryFrom(N2) = %v, want [C1]", names)
	}
}

func TestPathsIncluded(t *testing.T) {
	g, s := paperfix.Figure5()
	// Figure 5's point: the positive's paths are all covered by negatives.
	if !g.PathsIncluded(s.Pos, s.Neg) {
		t.Fatal("figure 5 positive should be covered by the negatives")
	}
	// But not by a single negative.
	if g.PathsIncluded(s.Pos, s.Neg[:1]) {
		t.Fatal("neg1 alone does not cover a·Σ* and b·Σ*")
	}
	w, ok := g.FirstEscapingPath(s.Pos, s.Neg[:1], -1)
	if !ok {
		t.Fatal("expected an escaping path")
	}
	if words.String(w, g.Alphabet()) != "b" {
		t.Fatalf("first escaping path = %v, want b", words.String(w, g.Alphabet()))
	}
}

func TestPathsIncludedAgainstAutomata(t *testing.T) {
	// Cross-check graph-side inclusion against the automata package on the
	// materialized NFAs: paths(left) ⊆ paths(right) iff
	// L(AsNFA(left)) ⊆ L(AsNFA(right)).
	rng := rand.New(rand.NewSource(21))
	alpha := alphabet.NewSorted("a", "b")
	for iter := 0; iter < 60; iter++ {
		g := randomGraph(rng, alpha, 7, 14)
		left := []graph.NodeID{graph.NodeID(rng.Intn(7))}
		right := []graph.NodeID{graph.NodeID(rng.Intn(7)), graph.NodeID(rng.Intn(7))}
		want := automata.Included(
			automata.Minimize(automata.Determinize(g.AsNFA(left))),
			automata.Minimize(automata.Determinize(g.AsNFA(right))))
		if got := g.PathsIncluded(left, right); got != want {
			t.Fatalf("iter %d: PathsIncluded = %v, automata = %v", iter, got, want)
		}
	}
}

func TestFirstEscapingPathDepthBound(t *testing.T) {
	g, s := paperfix.G0()
	v1 := mustNode(t, g, "v1")
	// SCP(ν1) = abc has length 3; with depth 2 it must not be found.
	if _, ok := g.FirstEscapingPath([]graph.NodeID{v1}, s.Neg, 2); ok {
		t.Fatal("no escaping path of length ≤ 2 exists for v1")
	}
	w, ok := g.FirstEscapingPath([]graph.NodeID{v1}, s.Neg, 3)
	if !ok || words.String(w, g.Alphabet()) != "a·b·c" {
		t.Fatalf("escaping path = %v, want a·b·c", w)
	}
}

func TestMatchesAndMatchesAny(t *testing.T) {
	g, _ := paperfix.G0()
	v1 := mustNode(t, g, "v1")
	v5 := mustNode(t, g, "v5")
	if !g.Matches(v1, words.Epsilon) {
		t.Fatal("ε matches everywhere")
	}
	if g.Matches(v5, wordOf(t, g, "c")) {
		t.Fatal("v5 has no c path")
	}
	if !g.MatchesAny([]graph.NodeID{v5, v1}, wordOf(t, g, "a", "b", "c")) {
		t.Fatal("v1 covers abc")
	}
	if g.MatchesAny(nil, words.Epsilon) {
		t.Fatal("empty set covers nothing")
	}
}

func TestPathsUpToLimit(t *testing.T) {
	g, _ := paperfix.G0()
	v1 := mustNode(t, g, "v1")
	got := g.PathsUpTo(v1, 10, 5)
	if len(got) != 5 {
		t.Fatalf("limit ignored: %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if !words.Less(got[i-1], got[i]) {
			t.Fatalf("paths not in canonical order at %d", i)
		}
	}
}

func TestNeighborhood(t *testing.T) {
	g, _ := paperfix.Figure1()
	n4 := mustNode(t, g, "N4")
	nb := g.Neighborhood(n4, 1)
	names := map[string]bool{}
	for _, v := range nb {
		names[g.NodeName(v)] = true
	}
	// Radius 1 around N4: N4 itself, C1 (out), N1 (both directions).
	for _, want := range []string{"N4", "C1", "N1"} {
		if !names[want] {
			t.Errorf("neighborhood missing %s (got %v)", want, names)
		}
	}
	if names["N5"] {
		t.Error("N5 is not within radius 1 of N4")
	}
}

func TestSubgraph(t *testing.T) {
	g, _ := paperfix.Figure1()
	n4 := mustNode(t, g, "N4")
	sub := g.Subgraph(g.Neighborhood(n4, 1))
	if sub.NumNodes() == 0 || sub.NumNodes() >= g.NumNodes() {
		t.Fatalf("subgraph size = %d", sub.NumNodes())
	}
	// The cinema edge N4 → C1 survives.
	sn4, ok := sub.NodeByName("N4")
	if !ok {
		t.Fatal("N4 missing from subgraph")
	}
	found := false
	for _, e := range sub.OutEdges(sn4) {
		if sub.Alphabet().Name(e.Sym) == "cinema" {
			found = true
		}
	}
	if !found {
		t.Fatal("cinema edge lost in subgraph")
	}
}

func TestTSVRoundTrip(t *testing.T) {
	g, _ := paperfix.G0()
	var buf bytes.Buffer
	if err := g.WriteTSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := graph.ReadTSV(bytes.NewReader(buf.Bytes()), nil)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: %d/%d nodes, %d/%d edges",
			back.NumNodes(), g.NumNodes(), back.NumEdges(), g.NumEdges())
	}
	// Same selection behavior after round trip.
	d1 := compileOn(t, g, "(a·b)*·c")
	d2 := compileOn(t, back, "(a·b)*·c")
	s1, s2 := g.SelectMonadic(d1), back.SelectMonadic(d2)
	for v := range s1 {
		if s1[v] != s2[v] {
			t.Fatalf("selection differs after round trip at node %d", v)
		}
	}
	// A second serialization is byte-identical (determinism).
	var buf2 bytes.Buffer
	if err := back.WriteTSV(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("serialization not deterministic")
	}
}

func TestReadTSVErrors(t *testing.T) {
	cases := []string{
		"x\tfoo\n",
		"v\n",
		"e\ta\tb\n",
	}
	for _, c := range cases {
		if _, err := graph.ReadTSV(bytes.NewReader([]byte(c)), nil); err == nil {
			t.Errorf("ReadTSV(%q) should fail", c)
		}
	}
	// Comments and blank lines are fine.
	g, err := graph.ReadTSV(bytes.NewReader([]byte("# hi\n\nv\tx\n")), nil)
	if err != nil || g.NumNodes() != 1 {
		t.Fatalf("comment handling broken: %v", err)
	}
}
