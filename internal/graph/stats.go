package graph

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"pathquery/internal/alphabet"
)

// Stats summarizes a graph's structure: the properties the paper's
// synthetic generator controls (scale-free degree distribution, Zipfian
// label distribution) and benchmark consumers inspect.
type Stats struct {
	Nodes, Edges int
	// MaxOutDegree / MaxInDegree witness the heavy tail.
	MaxOutDegree, MaxInDegree int
	// Sinks counts nodes with no outgoing edges (paths(ν) = {ε}).
	Sinks int
	// Sources counts nodes with no incoming edges.
	Sources int
	// LabelCounts maps each label to its edge count, descending.
	LabelCounts []LabelCount
	// DegreeHistogram[d] is the number of nodes with out-degree d,
	// capped at the last bucket.
	DegreeHistogram []int
}

// LabelCount pairs a label with its frequency.
type LabelCount struct {
	Label string
	Count int
}

// ComputeStats scans g once.
func (g *Graph) ComputeStats() Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	labelCounts := make(map[alphabet.Symbol]int)
	const histBuckets = 16
	s.DegreeHistogram = make([]int, histBuckets)
	for v := 0; v < g.NumNodes(); v++ {
		out := g.OutDegree(NodeID(v))
		in := g.InDegree(NodeID(v))
		if out > s.MaxOutDegree {
			s.MaxOutDegree = out
		}
		if in > s.MaxInDegree {
			s.MaxInDegree = in
		}
		if out == 0 {
			s.Sinks++
		}
		if in == 0 {
			s.Sources++
		}
		bucket := out
		if bucket >= histBuckets {
			bucket = histBuckets - 1
		}
		s.DegreeHistogram[bucket]++
		for _, e := range g.OutEdges(NodeID(v)) {
			labelCounts[e.Sym]++
		}
	}
	for sym, c := range labelCounts {
		s.LabelCounts = append(s.LabelCounts, LabelCount{g.alpha.Name(sym), c})
	}
	sort.Slice(s.LabelCounts, func(i, j int) bool {
		if s.LabelCounts[i].Count != s.LabelCounts[j].Count {
			return s.LabelCounts[i].Count > s.LabelCounts[j].Count
		}
		return s.LabelCounts[i].Label < s.LabelCounts[j].Label
	})
	return s
}

// Print renders the stats.
func (s Stats) Print(w io.Writer) {
	fmt.Fprintf(w, "nodes: %d  edges: %d  sinks: %d  sources: %d\n",
		s.Nodes, s.Edges, s.Sinks, s.Sources)
	fmt.Fprintf(w, "max out-degree: %d  max in-degree: %d\n",
		s.MaxOutDegree, s.MaxInDegree)
	fmt.Fprintln(w, "out-degree histogram (last bucket = ≥15):")
	for d, c := range s.DegreeHistogram {
		if c > 0 {
			fmt.Fprintf(w, "  %2d: %d\n", d, c)
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "label\tedges\tshare")
	for _, lc := range s.LabelCounts {
		fmt.Fprintf(tw, "%s\t%d\t%.2f%%\n", lc.Label, lc.Count,
			100*float64(lc.Count)/float64(s.Edges))
	}
	tw.Flush()
}
