package graph_test

import (
	"sync"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/graph"
	"pathquery/internal/regex"
)

// Tests for the epoch-snapshot lifecycle: mutations go to the build side,
// Snapshot() publishes immutable CSR epochs, Current() serves the latest
// published epoch without blocking on pending mutations.

func TestEpochLifecycle(t *testing.T) {
	g := graph.New(nil)
	g.AddEdgeByName("A", "x", "B")
	if g.Epoch() != 0 {
		t.Fatalf("epoch before first publication = %d, want 0", g.Epoch())
	}
	s1 := g.Snapshot()
	if s1.Epoch() != 1 {
		t.Fatalf("first epoch = %d, want 1", s1.Epoch())
	}
	if g.Snapshot() != s1 {
		t.Error("Snapshot with no pending mutations republished")
	}
	if g.Current() != s1 {
		t.Error("Current disagrees with the published snapshot")
	}

	g.AddEdgeByName("B", "x", "C")
	// Pending mutation: Current still serves epoch 1, Snapshot publishes 2.
	if cur := g.Current(); cur != s1 {
		t.Errorf("Current republished on dirty build side (epoch %d)", cur.Epoch())
	}
	s2 := g.Snapshot()
	if s2.Epoch() != 2 {
		t.Fatalf("second epoch = %d, want 2", s2.Epoch())
	}
	if s1.NumNodes() != 2 || s2.NumNodes() != 3 {
		t.Fatalf("node counts: epoch1 %d (want 2), epoch2 %d (want 3)",
			s1.NumNodes(), s2.NumNodes())
	}
	if s1.NumEdges() != 1 || s2.NumEdges() != 2 {
		t.Fatalf("edge counts: epoch1 %d (want 1), epoch2 %d (want 2)",
			s1.NumEdges(), s2.NumEdges())
	}
}

func TestSnapshotImmutableUnderMutation(t *testing.T) {
	alpha := alphabet.NewSorted("x", "y")
	g := graph.New(alpha)
	g.AddEdgeByName("A", "x", "B")
	s1 := g.Snapshot()
	d := automata.CompileRegex(regex.MustParse(alpha, "x·y"), alpha.Size())

	before := s1.SelectMonadic(d)
	g.AddEdgeByName("B", "y", "C")
	s2 := g.Snapshot()

	after := s1.SelectMonadic(d)
	for v := range before {
		if before[v] != after[v] {
			t.Fatalf("node %d: pinned epoch changed under mutation", v)
		}
	}
	a, _ := g.NodeByName("A")
	if after[a] {
		t.Error("epoch 1 sees the x·y path that only exists in epoch 2")
	}
	if sel := s2.SelectMonadic(d); !sel[a] {
		t.Error("epoch 2 misses the published x·y path")
	}
	// Graph-level reads take the read-your-writes path.
	if sel := g.SelectMonadic(d); !sel[a] {
		t.Error("graph-level read missed its own write")
	}
}

// TestConcurrentReadersDuringMutation is the serving contract under -race:
// one writer mutates and publishes epochs while readers pin snapshots via
// Current() and run product searches — without ever blocking the writer.
func TestConcurrentReadersDuringMutation(t *testing.T) {
	alpha := alphabet.NewSorted("a", "b", "c")
	g := graph.New(alpha)
	const base = 50
	for i := 0; i < base; i++ {
		g.AddEdge(g.AddNode(nodeName(i)), alphabet.Symbol(i%3), g.AddNode(nodeName((i+1)%base)))
	}
	g.Snapshot()
	d := automata.CompileRegex(regex.MustParse(alpha, "a·b*·c"), alpha.Size())

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // single writer
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 60; i++ {
			from := g.AddNode(nodeName(base + i))
			to := g.AddNode(nodeName(i % base))
			g.AddEdge(from, alphabet.Symbol(i%3), to)
			s := g.Snapshot()
			if want := uint64(i + 2); s.Epoch() != want {
				t.Errorf("writer: epoch %d, want %d", s.Epoch(), want)
				return
			}
		}
	}()
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				s := g.Current()
				sel := s.SelectMonadic(d)
				if len(sel) != s.NumNodes() {
					t.Errorf("reader %d: |sel| %d != epoch nodes %d", w, len(sel), s.NumNodes())
					return
				}
				// Name resolution against the pinned epoch must be in range.
				_ = s.NodeName(graph.NodeID(s.NumNodes() - 1))
				s.CoversAny(d, []graph.NodeID{graph.NodeID(w)})
				select {
				case <-stop:
					return
				default:
				}
			}
		}(w)
	}
	wg.Wait()

	if got := g.Snapshot().Epoch(); got != 61 {
		t.Fatalf("final epoch %d, want 61", got)
	}
}
