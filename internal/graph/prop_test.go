package graph_test

// Property tests for the CSR/bitset product engine: every product search
// is cross-checked against an AsNFA-based reference — the graph's path
// language materialized as an explicit NFA and combined with the query
// DFA through the automata package — on random graphs and random query
// DFAs.

import (
	"math/rand"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/graph"
	"pathquery/internal/words"
)

// refCovers is the AsNFA-based reference for monadic coverage:
// L(d) ∩ paths_G(set) ≠ ∅ iff the NFA intersection is non-empty.
func refCovers(g *graph.Graph, d *automata.DFA, set []graph.NodeID) bool {
	if len(set) == 0 {
		return false
	}
	return !automata.IntersectionEmpty(g.AsNFA(set), d.NFA())
}

// refCoversPair is the binary-semantics reference: the graph NFA keeps
// only the destination final, so its language is exactly paths2_G(u, v).
func refCoversPair(g *graph.Graph, d *automata.DFA, u, v graph.NodeID) bool {
	n := g.AsNFA([]graph.NodeID{u})
	for i := range n.Final {
		n.Final[i] = int32(i) == v
	}
	return !automata.IntersectionEmpty(n, d.NFA())
}

func randomDFA(rng *rand.Rand, numSyms int) *automata.DFA {
	return automata.RandomNonEmptyDFA(rng, 2+rng.Intn(5), numSyms, 0.3+0.5*rng.Float64())
}

func TestSelectMonadicMatchesNFAReference(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	alpha := alphabet.NewSorted("a", "b", "c")
	for iter := 0; iter < 80; iter++ {
		nodes := 2 + rng.Intn(10)
		g := randomGraph(rng, alpha, nodes, rng.Intn(3*nodes))
		d := randomDFA(rng, alpha.Size())
		sel := g.SelectMonadic(d)
		for v := 0; v < nodes; v++ {
			want := refCovers(g, d, []graph.NodeID{graph.NodeID(v)})
			if sel[v] != want {
				t.Fatalf("iter %d: SelectMonadic[%d] = %v, NFA reference = %v",
					iter, v, sel[v], want)
			}
		}
	}
}

func TestCoversAnyMatchesNFAReference(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	alpha := alphabet.NewSorted("a", "b", "c")
	for iter := 0; iter < 80; iter++ {
		nodes := 2 + rng.Intn(10)
		g := randomGraph(rng, alpha, nodes, rng.Intn(3*nodes))
		d := randomDFA(rng, alpha.Size())
		var set []graph.NodeID
		for v := 0; v < nodes; v++ {
			if rng.Intn(3) == 0 {
				set = append(set, graph.NodeID(v))
			}
		}
		if got, want := g.CoversAny(d, set), refCovers(g, d, set); got != want {
			t.Fatalf("iter %d: CoversAny(%v) = %v, NFA reference = %v", iter, set, got, want)
		}
	}
}

func TestCoversPairMatchesNFAReference(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	alpha := alphabet.NewSorted("a", "b", "c")
	for iter := 0; iter < 60; iter++ {
		nodes := 2 + rng.Intn(8)
		g := randomGraph(rng, alpha, nodes, rng.Intn(3*nodes))
		d := randomDFA(rng, alpha.Size())
		u := graph.NodeID(rng.Intn(nodes))
		v := graph.NodeID(rng.Intn(nodes))
		if got, want := g.CoversPair(d, u, v), refCoversPair(g, d, u, v); got != want {
			t.Fatalf("iter %d: CoversPair(%d,%d) = %v, NFA reference = %v", iter, u, v, got, want)
		}
		// SelectBinaryFrom must agree with CoversPair pointwise.
		sel := g.SelectBinaryFrom(d, u)
		hit := make(map[graph.NodeID]bool, len(sel))
		for i, x := range sel {
			hit[x] = true
			if i > 0 && sel[i-1] >= x {
				t.Fatalf("iter %d: SelectBinaryFrom not strictly increasing: %v", iter, sel)
			}
		}
		for x := 0; x < nodes; x++ {
			if hit[graph.NodeID(x)] != refCoversPair(g, d, u, graph.NodeID(x)) {
				t.Fatalf("iter %d: SelectBinaryFrom disagrees with reference at %d", iter, x)
			}
		}
	}
}

// TestFirstEscapingPathMatchesNFAReference checks both the inclusion
// verdict (against automata-side language inclusion on the materialized
// NFAs) and the witness word: it must escape, and it must be the
// canonical-order minimum among all escaping words, verified by brute
// force enumeration up to the witness length.
func TestFirstEscapingPathMatchesNFAReference(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	alpha := alphabet.NewSorted("a", "b")
	for iter := 0; iter < 60; iter++ {
		nodes := 2 + rng.Intn(7)
		g := randomGraph(rng, alpha, nodes, rng.Intn(2*nodes))
		left := []graph.NodeID{graph.NodeID(rng.Intn(nodes))}
		right := []graph.NodeID{graph.NodeID(rng.Intn(nodes))}
		w, ok := g.FirstEscapingPath(left, right, -1)
		wantIncluded := automata.Included(
			automata.Minimize(automata.Determinize(g.AsNFA(left))),
			automata.Minimize(automata.Determinize(g.AsNFA(right))))
		if ok == wantIncluded {
			t.Fatalf("iter %d: FirstEscapingPath ok = %v, automata inclusion = %v",
				iter, ok, wantIncluded)
		}
		if !ok {
			continue
		}
		if !g.MatchesAny(left, w) {
			t.Fatalf("iter %d: witness %v not in paths(left)", iter, w)
		}
		if g.MatchesAny(right, w) {
			t.Fatalf("iter %d: witness %v covered by right side", iter, w)
		}
		// Canonical minimality: no strictly smaller word escapes.
		for _, u := range words.UpTo(alpha.Symbols(), w) {
			if words.Compare(u, w) >= 0 {
				break
			}
			if g.MatchesAny(left, u) && !g.MatchesAny(right, u) {
				t.Fatalf("iter %d: %v escapes but is smaller than witness %v", iter, u, w)
			}
		}
	}
}

// TestStepMatchesReference checks the CSR Step against a naive
// per-edge-scan reference on random graphs, including duplicate edges.
func TestStepMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	alpha := alphabet.NewSorted("a", "b", "c", "d")
	for iter := 0; iter < 60; iter++ {
		nodes := 1 + rng.Intn(12)
		g := randomGraph(rng, alpha, nodes, rng.Intn(4*nodes))
		var set []graph.NodeID
		for v := 0; v < nodes; v++ {
			if rng.Intn(2) == 0 {
				set = append(set, graph.NodeID(v))
			}
		}
		for s := 0; s < alpha.Size(); s++ {
			sym := alphabet.Symbol(s)
			want := map[graph.NodeID]bool{}
			for _, v := range set {
				for _, e := range g.OutEdges(v) {
					if e.Sym == sym {
						want[e.To] = true
					}
				}
			}
			got := g.Step(set, sym)
			if len(got) != len(want) {
				t.Fatalf("iter %d sym %d: Step returned %d nodes, want %d", iter, s, len(got), len(want))
			}
			for i, v := range got {
				if !want[v] {
					t.Fatalf("iter %d sym %d: unexpected successor %d", iter, s, v)
				}
				if i > 0 && got[i-1] >= v {
					t.Fatalf("iter %d sym %d: Step output not sorted: %v", iter, s, got)
				}
			}
		}
	}
}

// TestStepAllMatchesStep checks the bulk transition primitive against
// per-symbol Step.
func TestStepAllMatchesStep(t *testing.T) {
	rng := rand.New(rand.NewSource(106))
	alpha := alphabet.NewSorted("a", "b", "c")
	for iter := 0; iter < 60; iter++ {
		nodes := 1 + rng.Intn(12)
		g := randomGraph(rng, alpha, nodes, rng.Intn(4*nodes))
		var set []graph.NodeID
		for v := 0; v < nodes; v++ {
			if rng.Intn(2) == 0 {
				set = append(set, graph.NodeID(v))
			}
		}
		got := map[alphabet.Symbol][]graph.NodeID{}
		g.StepAll(set, func(sym alphabet.Symbol, succ []graph.NodeID) {
			if len(succ) == 0 {
				t.Fatalf("iter %d: StepAll visited symbol %d with empty successors", iter, sym)
			}
			if _, dup := got[sym]; dup {
				t.Fatalf("iter %d: StepAll visited symbol %d twice", iter, sym)
			}
			got[sym] = succ
		})
		for s := 0; s < alpha.Size(); s++ {
			sym := alphabet.Symbol(s)
			want := g.Step(set, sym)
			have := got[sym]
			if len(want) != len(have) {
				t.Fatalf("iter %d sym %d: StepAll %v, Step %v", iter, s, have, want)
			}
			for i := range want {
				if want[i] != have[i] {
					t.Fatalf("iter %d sym %d: StepAll %v, Step %v", iter, s, have, want)
				}
			}
		}
	}
}

// TestMutateAfterFreeze checks the rebuild contract: reads after mutation
// observe the new edges.
func TestMutateAfterFreeze(t *testing.T) {
	alpha := alphabet.NewSorted("a", "b")
	g := graph.New(alpha)
	x := g.AddNode("x")
	y := g.AddNode("y")
	a, _ := alpha.Lookup("a")
	g.AddEdge(x, a, y)
	if got := g.Step([]graph.NodeID{x}, a); len(got) != 1 || got[0] != y {
		t.Fatalf("Step before mutation = %v", got)
	}
	z := g.AddNode("z")
	g.AddEdge(x, a, z)
	got := g.Step([]graph.NodeID{x}, a)
	if len(got) != 2 || got[0] != y || got[1] != z {
		t.Fatalf("Step after mutation = %v, want [y z]", got)
	}
}
