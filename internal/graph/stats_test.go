package graph_test

import (
	"bytes"
	"strings"
	"testing"

	"pathquery/internal/paperfix"
)

func TestComputeStatsG0(t *testing.T) {
	g, _ := paperfix.G0()
	s := g.ComputeStats()
	if s.Nodes != 7 || s.Edges != 15 {
		t.Fatalf("stats = %d nodes / %d edges", s.Nodes, s.Edges)
	}
	// ν4 is the only sink in G0.
	if s.Sinks != 1 {
		t.Fatalf("sinks = %d, want 1", s.Sinks)
	}
	if s.MaxOutDegree < 2 {
		t.Fatalf("max out-degree = %d", s.MaxOutDegree)
	}
	// Label counts sum to the edge count and come sorted descending.
	total := 0
	for i, lc := range s.LabelCounts {
		total += lc.Count
		if i > 0 && lc.Count > s.LabelCounts[i-1].Count {
			t.Fatal("label counts not sorted")
		}
	}
	if total != s.Edges {
		t.Fatalf("label counts sum to %d, want %d", total, s.Edges)
	}
	// Histogram sums to the node count.
	nodes := 0
	for _, c := range s.DegreeHistogram {
		nodes += c
	}
	if nodes != s.Nodes {
		t.Fatalf("histogram sums to %d, want %d", nodes, s.Nodes)
	}
}

func TestStatsPrint(t *testing.T) {
	g, _ := paperfix.Figure1()
	var buf bytes.Buffer
	g.ComputeStats().Print(&buf)
	out := buf.String()
	for _, want := range []string{"nodes: 10", "cinema", "histogram"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
}
