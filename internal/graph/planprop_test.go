package graph_test

// Property tests for the compiled-plan evaluators: every *Plan method is
// cross-checked against the AsNFA-based reference (the graph's path
// language materialized as an explicit NFA, combined with the query DFA
// through the automata package) on random graphs and random DFAs, for
// both plan constructors — Compile (canonicalized) and FromDFA
// (shape-preserving) — so the masked and packed layouts and the
// direction-optimizing traversals are all exercised.

import (
	"math/rand"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/datasets"
	"pathquery/internal/graph"
	"pathquery/internal/plan"
)

// plansOf builds both plan forms of d. Compile may change the state count
// (minimization), FromDFA never does; their languages are identical, so
// every evaluator must agree between them and with the NFA reference.
func plansOf(d *automata.DFA) []*plan.Plan {
	return []*plan.Plan{plan.FromDFA(d), plan.Compile(d)}
}

func TestSelectMonadicPlanMatchesNFAReference(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	alpha := alphabet.NewSorted("a", "b", "c")
	for iter := 0; iter < 80; iter++ {
		nodes := 2 + rng.Intn(10)
		g := randomGraph(rng, alpha, nodes, rng.Intn(3*nodes))
		d := randomDFA(rng, alpha.Size())
		snap := g.Snapshot()
		for pi, p := range plansOf(d) {
			sel := snap.SelectMonadicPlan(p)
			for v := 0; v < nodes; v++ {
				want := refCovers(g, d, []graph.NodeID{graph.NodeID(v)})
				if sel[v] != want {
					t.Fatalf("iter %d plan %d: SelectMonadicPlan[%d] = %v, NFA reference = %v",
						iter, pi, v, sel[v], want)
				}
			}
		}
	}
}

// TestSelectMonadicPlanPackedMatchesReference drives the packed layout
// (|Q| > 64) against the same reference: random DFAs padded with inert
// states so FromDFA keeps the large state count.
func TestSelectMonadicPlanPackedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	alpha := alphabet.NewSorted("a", "b")
	for iter := 0; iter < 30; iter++ {
		nodes := 2 + rng.Intn(8)
		g := randomGraph(rng, alpha, nodes, rng.Intn(3*nodes))
		d := randomDFA(rng, alpha.Size())
		// Pad with unreachable states so the packed layout engages while
		// the language is unchanged.
		for d.NumStates() <= 64 {
			d.AddState()
		}
		p := plan.FromDFA(d)
		if p.Layout != plan.LayoutPacked {
			t.Fatalf("iter %d: padded DFA still %v", iter, p.Layout)
		}
		snap := g.Snapshot()
		sel := snap.SelectMonadicPlan(p)
		for v := 0; v < nodes; v++ {
			want := refCovers(g, d, []graph.NodeID{graph.NodeID(v)})
			if sel[v] != want {
				t.Fatalf("iter %d: packed SelectMonadicPlan[%d] = %v, want %v", iter, v, sel[v], want)
			}
		}
	}
}

func TestCoversPlanMatchesNFAReference(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	alpha := alphabet.NewSorted("a", "b", "c")
	for iter := 0; iter < 80; iter++ {
		nodes := 2 + rng.Intn(10)
		g := randomGraph(rng, alpha, nodes, rng.Intn(3*nodes))
		d := randomDFA(rng, alpha.Size())
		var set []graph.NodeID
		for v := 0; v < nodes; v++ {
			if rng.Intn(3) == 0 {
				set = append(set, graph.NodeID(v))
			}
		}
		snap := g.Snapshot()
		want := refCovers(g, d, set)
		for pi, p := range plansOf(d) {
			if got := snap.CoversAnyPlan(p, set); got != want {
				t.Fatalf("iter %d plan %d: CoversAnyPlan(%v) = %v, NFA reference = %v",
					iter, pi, set, got, want)
			}
			for _, v := range set {
				if got := snap.CoversPlan(p, v); got != refCovers(g, d, []graph.NodeID{v}) {
					t.Fatalf("iter %d plan %d: CoversPlan(%d) disagrees", iter, pi, v)
				}
			}
		}
	}
}

func TestCoversPairPlanMatchesNFAReference(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	alpha := alphabet.NewSorted("a", "b", "c")
	for iter := 0; iter < 80; iter++ {
		nodes := 2 + rng.Intn(8)
		g := randomGraph(rng, alpha, nodes, rng.Intn(3*nodes))
		d := randomDFA(rng, alpha.Size())
		u := graph.NodeID(rng.Intn(nodes))
		v := graph.NodeID(rng.Intn(nodes))
		snap := g.Snapshot()
		want := refCoversPair(g, d, u, v)
		for pi, p := range plansOf(d) {
			if got := snap.CoversPairPlan(p, u, v); got != want {
				t.Fatalf("iter %d plan %d: CoversPairPlan(%d,%d) = %v, NFA reference = %v",
					iter, pi, u, v, got, want)
			}
		}
	}
}

func TestSelectBinaryFromPlanMatchesNFAReference(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	alpha := alphabet.NewSorted("a", "b", "c")
	for iter := 0; iter < 80; iter++ {
		nodes := 2 + rng.Intn(8)
		g := randomGraph(rng, alpha, nodes, rng.Intn(3*nodes))
		d := randomDFA(rng, alpha.Size())
		u := graph.NodeID(rng.Intn(nodes))
		snap := g.Snapshot()
		for pi, p := range plansOf(d) {
			sel := snap.SelectBinaryFromPlan(p, u)
			hit := make(map[graph.NodeID]bool, len(sel))
			for i, x := range sel {
				hit[x] = true
				if i > 0 && sel[i-1] >= x {
					t.Fatalf("iter %d plan %d: not strictly increasing: %v", iter, pi, sel)
				}
			}
			for x := 0; x < nodes; x++ {
				if hit[graph.NodeID(x)] != refCoversPair(g, d, u, graph.NodeID(x)) {
					t.Fatalf("iter %d plan %d: SelectBinaryFromPlan disagrees with reference at %d",
						iter, pi, x)
				}
			}
		}
	}
}

// TestSelectBinaryDirectionalAgainstForwardShape pins the direction
// optimization's correctness on the adversarial shape the benchmark
// measures (datasets.DirectionalSkew: dense 'a' core fed by a chain
// ending in the only 'b' edge, query a*·b): results from a flooded core
// (no pairs) and from the chain head (exactly the sink) must match the
// NFA reference.
func TestSelectBinaryDirectionalAgainstForwardShape(t *testing.T) {
	g, head, sink := datasets.DirectionalSkew(60, 8)
	coreNode, ok := g.NodeByName("core0")
	if !ok {
		t.Fatal("no core0 node")
	}
	alpha := g.Alphabet()
	a, _ := alpha.Lookup("a")
	b, _ := alpha.Lookup("b")
	// a*·b as a DFA: q0 -a-> q0, q0 -b-> q1(final).
	d := automata.NewDFA(2, alpha.Size())
	d.Delta[0][a] = 0
	d.Delta[0][b] = 1
	d.Final[1] = true
	p := plan.FromDFA(d)
	snap := g.Snapshot()

	if got := snap.SelectBinaryFromPlan(p, coreNode); len(got) != 0 {
		t.Fatalf("core node selected %v, want none (core cannot reach the b-edge)", got)
	}
	got := snap.SelectBinaryFromPlan(p, head)
	if len(got) != 1 || got[0] != sink {
		t.Fatalf("chain head selected %v, want [%d]", got, sink)
	}
	for _, u := range []graph.NodeID{coreNode, head} {
		sel := snap.SelectBinaryFromPlan(p, u)
		hit := make(map[graph.NodeID]bool, len(sel))
		for _, x := range sel {
			hit[x] = true
		}
		for x := 0; x < snap.NumNodes(); x++ {
			if hit[graph.NodeID(x)] != refCoversPair(g, d, u, graph.NodeID(x)) {
				t.Fatalf("directional disagrees with NFA reference at (%d,%d)", u, x)
			}
		}
		if snap.CoversPairPlan(p, u, sink) != refCoversPair(g, d, u, sink) {
			t.Fatalf("CoversPairPlan(%d, sink) disagrees with reference", u)
		}
	}
}
