package graph

import (
	"pathquery/internal/alphabet"
	"pathquery/internal/words"
)

// WitnessBFS is the canonical-order word search shared by every
// witness-producing evaluator: firstEscaping (path-language inclusion,
// product.go), scp.Coverage.Smallest (SCP extraction), and the binary
// learner's smallest pair-path. Each of these used to carry its own copy
// of the same loop — a BFS over a product of two opaque int32 components
// (a graph node or interned node set on the left, a determinized
// right-language state on the right) that enumerates words in the
// canonical length-lexicographic order of Section 2 and returns the first
// accepted one.
//
// starts are the depth-0 states, visited in order with the word ε. expand
// must emit the successors of a state grouped by symbol in ascending
// symbol order (CSR segments and SymbolsOf already are) — that is what
// keeps the enumeration canonical. accept is evaluated exactly once per
// distinct state, at discovery; the word under which a state is first
// discovered is its canonical-minimal witness, so the first accepted
// discovery yields the overall canonical-minimal accepted word. depth
// bounds the word length (< 0 means unbounded; termination is then
// guaranteed by the finiteness of the state space).
//
// Returns (word, true) for the canonical-minimal accepted word, or
// (nil, false) when no accepted word exists within the bound.
func WitnessBFS(depth int, starts [][2]int32,
	accept func(a, b int32) bool,
	expand func(a, b int32, emit func(sym alphabet.Symbol, a2, b2 int32)),
) (words.Word, bool) {
	type item struct {
		a, b int32
		word words.Word
	}
	key := func(a, b int32) uint64 {
		return uint64(uint32(b))<<32 | uint64(uint32(a))
	}
	seen := make(map[uint64]bool, len(starts))
	queue := make([]item, 0, len(starts))
	for _, st := range starts {
		k := key(st[0], st[1])
		if seen[k] {
			continue
		}
		seen[k] = true
		if accept(st[0], st[1]) {
			return words.Epsilon, true
		}
		queue = append(queue, item{st[0], st[1], words.Epsilon})
	}

	var (
		cur    item
		w      words.Word // word for the current (state, symbol) expansion
		wsym   alphabet.Symbol
		result words.Word
		found  bool
	)
	// One emit closure for the whole search: successors of one symbol
	// share a single appended word.
	emit := func(sym alphabet.Symbol, a2, b2 int32) {
		if found {
			return
		}
		k := key(a2, b2)
		if seen[k] {
			return
		}
		seen[k] = true
		if w == nil || wsym != sym {
			w, wsym = words.Append(cur.word, sym), sym
		}
		if accept(a2, b2) {
			result, found = w, true
			return
		}
		queue = append(queue, item{a2, b2, w})
	}
	for qi := 0; qi < len(queue) && !found; qi++ {
		cur = queue[qi]
		if depth >= 0 && len(cur.word) >= depth {
			continue
		}
		w = nil
		expand(cur.a, cur.b, emit)
	}
	return result, found
}
