package graph

import (
	"context"

	"pathquery/internal/alphabet"
	"pathquery/internal/plan"
	"pathquery/internal/words"
)

// This file holds the result-shape accumulators behind the unified
// evaluation API (query.EvaluateReq): witness-path reconstruction and
// accepting-length counting. Both ride the same forward/backward product
// expansion as the selection evaluators in product.go — a witness is a
// forward search that additionally records the parent chain, and a length
// count is the backward propagation run level-exactly instead of to a
// fixpoint — so a new result shape is one more accumulator over the
// traversal core, not a new traversal.

// PathWitness is one reconstructed accepting path: Nodes[0] is the start
// node, Word[i] labels the edge Nodes[i] → Nodes[i+1], and the path spells
// a word of the query language (len(Nodes) == len(Word)+1; a witness for
// an ε-accepting query is the single start node and the empty word).
type PathWitness struct {
	Nodes []NodeID
	Word  words.Word
}

// parentStep records how a product pair was first discovered: the pair it
// was expanded from and the symbol of the connecting edge.
type parentStep struct {
	prev uint64
	sym  alphabet.Symbol
}

// WitnessPathPlan returns the canonical-minimal accepting path starting at
// ν — the actual labeled path whose word witnesses that p selects ν under
// monadic semantics. The search is a forward product BFS from (ν, Start)
// expanding CSR segments in ascending symbol order with a recorded parent
// chain, so the first accepting discovery is the length-lexicographic
// minimal witness (the WitnessBFS discipline of witness.go, plus parents).
// ok is false when ν is not selected.
func (s *Snapshot) WitnessPathPlan(ctx context.Context, p *plan.Plan, nu NodeID) (PathWitness, bool, error) {
	return s.witnessPath(ctx, p, nu, -1)
}

// WitnessPairPathPlan returns the shortest (canonical-minimal) path from u
// to v spelling a word of L(p) — the witness of (u, v) under the binary
// semantics of Appendix B. ok is false when the pair is not selected.
func (s *Snapshot) WitnessPairPathPlan(ctx context.Context, p *plan.Plan, u, v NodeID) (PathWitness, bool, error) {
	return s.witnessPath(ctx, p, u, v)
}

// witnessPath is the shared parent-chain BFS: target < 0 accepts any
// (node, final) pair (monadic witness), target ≥ 0 only (target, final)
// (pair witness).
func (s *Snapshot) witnessPath(ctx context.Context, p *plan.Plan, start NodeID, target NodeID) (PathWitness, bool, error) {
	if err := ctx.Err(); err != nil {
		return PathWitness{}, false, err
	}
	if p.Empty() {
		return PathWitness{}, false, nil
	}
	if p.AcceptsEpsilon() && (target < 0 || target == start) {
		return PathWitness{Nodes: []NodeID{start}, Word: words.Epsilon}, true, nil
	}
	if target < 0 && !s.hasFirstSymEdge(p, start) {
		// No out-edge of ν can start an accepted word: not selected.
		return PathWitness{}, false, nil
	}

	nq := p.NumStates
	sc := s.getProduct(s.nv * nq)
	defer s.putProductSparse(sc)
	parents := make(map[uint64]parentStep)
	co := &s.out

	startIdx := uint64(int(start)*nq + int(p.Start))
	sc.bits.Set(int(startIdx))
	sc.touched = append(sc.touched, startIdx)
	queue := append(sc.stack[:0], startIdx)
	defer func() { sc.stack = queue[:0] }()

	accept := func(v NodeID, q int32) bool {
		return p.Final[q] && (target < 0 || v == target)
	}
	for qi := 0; qi < len(queue); qi++ {
		if qi%ctxCheckInterval == ctxCheckInterval-1 {
			if err := ctx.Err(); err != nil {
				return PathWitness{}, false, err
			}
		}
		idx := queue[qi]
		v := NodeID(idx / uint64(nq))
		q := int32(idx % uint64(nq))
		base := int(q) * p.NumSyms
		rs := co.segs(v)
		for si := range rs.syms {
			sym := int(rs.syms[si])
			if sym >= p.NumSyms {
				continue
			}
			t := p.Delta[base+sym]
			if t == plan.None || !p.Live[t] {
				continue
			}
			tb := int(t)
			for _, e := range rs.edges[rs.offs[si]:rs.offs[si+1]] {
				nidx := uint64(int(e.To)*nq + tb)
				if !sc.bits.TrySet(int(nidx)) {
					continue
				}
				sc.touched = append(sc.touched, nidx)
				parents[nidx] = parentStep{prev: idx, sym: alphabet.Symbol(sym)}
				if accept(e.To, t) {
					return reconstruct(parents, startIdx, nidx, nq), true, nil
				}
				queue = append(queue, nidx)
			}
		}
	}
	return PathWitness{}, false, nil
}

// reconstruct walks the parent chain from the accepting pair back to the
// start pair, rebuilding the node sequence and the word.
func reconstruct(parents map[uint64]parentStep, start, end uint64, nq int) PathWitness {
	depth := 0
	for idx := end; idx != start; idx = parents[idx].prev {
		depth++
	}
	pw := PathWitness{
		Nodes: make([]NodeID, depth+1),
		Word:  make(words.Word, depth),
	}
	idx := end
	for i := depth; i > 0; i-- {
		step := parents[idx]
		pw.Nodes[i] = NodeID(idx / uint64(nq))
		pw.Word[i-1] = step.sym
		idx = step.prev
	}
	pw.Nodes[0] = NodeID(start / uint64(nq))
	return pw
}

// CountPlanCtx returns, per node ν, the number of distinct lengths
// ℓ ≤ maxLen such that some accepting path of exactly ℓ edges starts at ν
// — the count accumulator of the unified evaluation API. Level ℓ of the
// backward propagation is the set S_ℓ of product pairs from which an
// accepting pair is reachable in exactly ℓ steps (S_0 = every (v, final));
// ν gains a count at every level containing (ν, Start). Unlike the
// fixpoint propagation of SelectMonadicPlan, levels are relaxed exactly
// (deduplicated within a level, never across levels — a pair may recur at
// several lengths), so maxLen bounds the work at O(maxLen·|E|·|Q|).
func (s *Snapshot) CountPlanCtx(ctx context.Context, p *plan.Plan, maxLen int) ([]int32, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	nv, nq := s.nv, p.NumStates
	counts := make([]int32, nv)
	if nv == 0 || nq == 0 || p.Empty() || maxLen < 0 {
		return counts, nil
	}

	// Length 0: ε is an accepting path of every node iff Start is final.
	if p.Final[p.Start] {
		for v := range counts {
			counts[v]++
		}
	}

	sc := s.getProduct(nv * nq)
	defer s.putProductSparse(sc) // touched is empty between levels
	cur := sc.stack[:0]
	next := sc.next[:0]
	defer func() { sc.stack, sc.next = cur[:0], next[:0] }()

	// S_0: every (v, f) with f final and reachable from Start — pairs
	// outside Reach can never terminate a run that began at (ν, Start).
	for _, f := range p.Finals {
		if !p.Reach[f] {
			continue
		}
		for v := 0; v < nv; v++ {
			cur = append(cur, uint64(v*nq+int(f)))
		}
	}

	ci := &s.in
	startState := int(p.Start)
	for level := 1; level <= maxLen && len(cur) > 0; level++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		next = next[:0]
		for _, idx := range cur {
			v := NodeID(idx / uint64(nq))
			q := int(idx % uint64(nq))
			rs := ci.segs(v)
			for si := range rs.syms {
				sym := int(rs.syms[si])
				if sym >= p.NumSyms {
					continue
				}
				k := sym*nq + q
				preds := p.RevPred[p.RevOff[k]:p.RevOff[k+1]]
				if len(preds) == 0 {
					continue
				}
				tails := rs.edges[rs.offs[si]:rs.offs[si+1]]
				for _, pr := range preds {
					if !p.Reach[pr] {
						continue
					}
					base := int(pr)
					for _, e := range tails {
						nidx := int(e.To)*nq + base
						if sc.bits.TrySet(nidx) {
							sc.touched = append(sc.touched, uint64(nidx))
							next = append(next, uint64(nidx))
						}
					}
				}
			}
		}
		// Read the level off and reset the per-level dedup set.
		for _, idx := range next {
			if int(idx%uint64(nq)) == startState {
				counts[idx/uint64(nq)]++
			}
			sc.bits.Clear(int(idx))
		}
		sc.touched = sc.touched[:0]
		cur, next = next, cur
	}
	return counts, nil
}
