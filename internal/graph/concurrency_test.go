package graph_test

import (
	"sync"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/graph"
	"pathquery/internal/regex"
)

// TestConcurrentReadsAfterBuild exercises the documented concurrency
// contract: once construction is done, goroutines may read concurrently —
// including the very first read, which triggers the lazy adjacency sort.
// Run with -race to make this meaningful.
func TestConcurrentReadsAfterBuild(t *testing.T) {
	alpha := alphabet.NewSorted("a", "b", "c")
	g := graph.New(alpha)
	const n = 200
	for i := 0; i < n; i++ {
		g.AddNode(nodeName(i % 100))
	}
	for i := 0; i < 600; i++ {
		g.AddEdge(graph.NodeID(i%100), alphabet.Symbol(i%3), graph.NodeID((i*7)%100))
	}
	d := automata.CompileRegex(regex.MustParse(alpha, "a·b*·c"), alpha.Size())

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for v := w; v < 100; v += 8 {
				g.OutEdges(graph.NodeID(v))
				g.InEdges(graph.NodeID(v))
				g.Covers(d, graph.NodeID(v))
				g.PathsUpTo(graph.NodeID(v), 3, 10)
			}
		}(w)
	}
	wg.Wait()

	// Reads from all workers must agree with a fresh sequential pass.
	sel := g.SelectMonadic(d)
	for v := 0; v < 100; v++ {
		if got := g.Covers(d, graph.NodeID(v)); got != sel[v] {
			t.Fatalf("node %d: concurrent warm-up corrupted state", v)
		}
	}
}
