package graph_test

// Tests for the epoch-delta layer (delta.go) and the incremental
// regrow evaluators (incremental.go): delta accumulation across
// publishes, span folding over epoch ranges, the chain fence and the
// overflow valve, and — the property the engine's cache maintenance
// rests on — that regrowing a cached fixpoint from a delta span is
// bit-for-bit identical to recomputing it from scratch on the new
// snapshot.

import (
	"context"
	"math/rand"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/graph"
	"pathquery/internal/plan"
)

func TestDeltaAccumulation(t *testing.T) {
	g := graph.New(nil)
	g.AddEdgeByName("A", "x", "B")
	g.AddEdgeByName("B", "y", "C")
	s1 := g.Snapshot()
	if s1.Delta() != nil {
		t.Fatal("first publication carries a delta; bulk build must be free")
	}
	if _, ok := s1.DeltaSince(s1.Epoch()); !ok {
		t.Fatal("DeltaSince(current epoch) must be the empty span, ok")
	}

	g.AddEdgeByName("C", "x", "D")
	g.AddEdgeByName("A", "z", "C")
	s2 := g.Snapshot()
	d := s2.Delta()
	if d == nil {
		t.Fatal("second publication lost its delta")
	}
	if len(d.Edges) != 2 {
		t.Fatalf("delta has %d edges, want 2", len(d.Edges))
	}
	alpha := g.Alphabet()
	wantMask := plan.SymBit(int(mustSym(t, alpha, "x"))) | plan.SymBit(int(mustSym(t, alpha, "z")))
	if d.SymMask != wantMask {
		t.Fatalf("delta SymMask = %b, want %b", d.SymMask, wantMask)
	}
	if d.PrevNumNodes != 3 || d.NumNodes != 4 {
		t.Fatalf("delta node counts = (%d, %d), want (3, 4)", d.PrevNumNodes, d.NumNodes)
	}

	span, ok := s2.DeltaSince(s1.Epoch())
	if !ok {
		t.Fatal("DeltaSince(previous epoch) broke on an unbroken chain")
	}
	if span.NumEdges != 2 || span.SymMask != wantMask || span.NewNodes != 1 {
		t.Fatalf("span = %+v, want 2 edges, mask %b, 1 new node", span, wantMask)
	}
	if _, ok := s2.DeltaSince(0); ok {
		t.Fatal("DeltaSince(0) crossed the pre-history boundary")
	}
}

func TestDeltaSpanFoldsEpochs(t *testing.T) {
	g := graph.New(nil)
	g.AddEdgeByName("A", "a", "B")
	s1 := g.Snapshot()
	labels := []string{"b", "c", "d"}
	for _, l := range labels {
		g.AddEdgeByName("A", l, "B")
		g.Snapshot()
	}
	cur := g.Current()
	span, ok := cur.DeltaSince(s1.Epoch())
	if !ok {
		t.Fatal("fold over three consecutive deltas broke")
	}
	if span.NumEdges != 3 || len(span.Batches) != 3 {
		t.Fatalf("folded span has %d edges in %d batches, want 3 in 3", span.NumEdges, len(span.Batches))
	}
	var want uint64
	for _, l := range labels {
		want |= plan.SymBit(int(mustSym(t, g.Alphabet(), l)))
	}
	if span.SymMask != want {
		t.Fatalf("folded SymMask = %b, want %b", span.SymMask, want)
	}
	// A node-only publication still chains (no hole in the epoch
	// sequence), contributing zero edges and one new node.
	g.AddNode("Z")
	s5 := g.Snapshot()
	span, ok = s5.DeltaSince(cur.Epoch())
	if !ok || span.NumEdges != 0 || span.NewNodes != 1 {
		t.Fatalf("node-only span = %+v ok=%v, want 0 edges, 1 new node", span, ok)
	}
}

func TestDeltaChainFence(t *testing.T) {
	g := graph.New(nil)
	g.AddEdgeByName("A", "x", "B")
	first := g.Snapshot()
	var mid *graph.Snapshot
	for i := 0; i < 80; i++ {
		g.AddEdgeByName("A", "x", "B")
		s := g.Snapshot()
		if i == 70 {
			mid = s
		}
	}
	cur := g.Current()
	if _, ok := cur.DeltaSince(first.Epoch()); ok {
		t.Fatal("span across the chain fence resolved; memory would be unbounded")
	}
	if span, ok := cur.DeltaSince(mid.Epoch()); !ok || span.NumEdges != 9 {
		t.Fatalf("recent span = %+v ok=%v, want 9 edges", span, ok)
	}
}

// mustSym interns nothing: the label must already exist.
func mustSym(t *testing.T, alpha *alphabet.Alphabet, label string) alphabet.Symbol {
	t.Helper()
	sym, ok := alpha.Lookup(label)
	if !ok {
		t.Fatalf("label %q not interned", label)
	}
	return sym
}

// TestRegrowMatchesFromScratch is the soundness property of incremental
// maintenance: fold a random delta span into the cached fixpoint of an
// older epoch and the masks — and the selected nodes — must equal a
// from-scratch evaluation on the new snapshot, for both the monadic
// (backward) and anchored-binary (forward) evaluators.
func TestRegrowMatchesFromScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	alpha := alphabet.NewSorted("a", "b", "c")
	ctx := context.Background()
	for iter := 0; iter < 120; iter++ {
		nodes := 2 + rng.Intn(10)
		g := randomGraph(rng, alpha, nodes, rng.Intn(3*nodes))
		p := plan.FromDFA(randomDFA(rng, alpha.Size()))
		if p.Layout != plan.LayoutMasked || p.Empty() {
			continue
		}
		s1 := g.Snapshot()
		oldNodes, oldMasks, err := s1.SelectMonadicMaskedState(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		u := graph.NodeID(rng.Intn(nodes))
		oldPairs, oldPairMasks, err := s1.SelectBinaryFromMaskedState(ctx, p, u)
		if err != nil {
			t.Fatal(err)
		}

		// Mutate: a few random edges, sometimes through brand-new nodes.
		grown := nodes
		for i := rng.Intn(3); i > 0; i-- {
			g.AddNode(string(rune('α' + iter*4 + i)))
			grown++
		}
		for i := 0; i < 1+rng.Intn(5); i++ {
			f := graph.NodeID(rng.Intn(grown))
			to := graph.NodeID(rng.Intn(grown))
			g.AddEdge(f, alphabet.Symbol(rng.Intn(alpha.Size())), to)
		}
		s2 := g.Snapshot()
		span, ok := s2.DeltaSince(s1.Epoch())
		if !ok {
			t.Fatalf("iter %d: single-step span broke", iter)
		}

		nv := s2.NumNodes()
		masks := make([]uint64, nv)
		copy(masks, oldMasks)
		// New nodes start at the trivial backward fixpoint; under ε they
		// are selected without traversal (the engine's "extra" nodes).
		var extra []graph.NodeID
		for v := len(oldMasks); v < nv; v++ {
			masks[v] = p.FinalMask
			if p.AcceptsEpsilon() {
				extra = append(extra, graph.NodeID(v))
			}
		}
		newly, _, ok := s2.RegrowMonadicMasked(p, masks, &span, 1<<30)
		if !ok {
			t.Fatalf("iter %d: monadic regrow exceeded an unbounded budget", iter)
		}
		wantNodes, wantMasks, err := s2.SelectMonadicMaskedState(ctx, p)
		if err != nil {
			t.Fatal(err)
		}
		for v := range wantMasks {
			if masks[v] != wantMasks[v] {
				t.Fatalf("iter %d: monadic mask[%d] = %b, from-scratch %b", iter, v, masks[v], wantMasks[v])
			}
		}
		checkMerged(t, iter, "monadic", append(append([]graph.NodeID(nil), oldNodes...), extra...), newly, wantNodes)

		pairMasks := make([]uint64, nv)
		copy(pairMasks, oldPairMasks)
		newly, _, ok = s2.RegrowBinaryFromMasked(p, pairMasks, &span, 1<<30)
		if !ok {
			t.Fatalf("iter %d: binary regrow exceeded an unbounded budget", iter)
		}
		wantPairs, wantPairMasks, err := s2.SelectBinaryFromMaskedState(ctx, p, u)
		if err != nil {
			t.Fatal(err)
		}
		for v := range wantPairMasks {
			if pairMasks[v] != wantPairMasks[v] {
				t.Fatalf("iter %d: binary mask[%d] = %b, from-scratch %b", iter, v, pairMasks[v], wantPairMasks[v])
			}
		}
		checkMerged(t, iter, "binary", oldPairs, newly, wantPairs)
	}
}

// checkMerged verifies old ∪ newly == want as sorted sets.
func checkMerged(t *testing.T, iter int, kind string, old, newly, want []graph.NodeID) {
	t.Helper()
	seen := make(map[graph.NodeID]bool, len(old)+len(newly))
	for _, v := range old {
		seen[v] = true
	}
	for _, v := range newly {
		if seen[v] {
			t.Fatalf("iter %d %s: regrow re-reported already-selected node %d", iter, kind, v)
		}
		seen[v] = true
	}
	if len(seen) != len(want) {
		t.Fatalf("iter %d %s: merged %d nodes, from-scratch %d", iter, kind, len(seen), len(want))
	}
	for _, v := range want {
		if !seen[v] {
			t.Fatalf("iter %d %s: from-scratch selects %d, merged set misses it", iter, kind, v)
		}
	}
}
