package graph

// Publish-path benchmarks for incremental CSR publishing. The pair
// Incremental/Full is the tentpole's acceptance evidence: a ≤64-edge
// delta must publish ≥10× faster than the from-scratch rebuild of the
// same graph, which also demonstrates that untouched rows are never
// re-sorted (a re-sort would make the incremental path scale with |E|,
// not |delta|). Compact measures the amortized fold of the overlay back
// into a fresh base.

import (
	"fmt"
	"math/rand"
	"testing"

	"pathquery/internal/alphabet"
)

// benchPublishGraph builds a random published graph with nv nodes and
// ne edges over 8 labels.
func benchPublishGraph(nv, ne int) *Graph {
	rng := rand.New(rand.NewSource(7))
	labels := make([]string, 8)
	for i := range labels {
		labels[i] = fmt.Sprintf("l%d", i)
	}
	g := New(alphabet.NewSorted(labels...))
	for i := 0; i < nv; i++ {
		g.AddNode(fmt.Sprintf("v%d", i))
	}
	for i := 0; i < ne; i++ {
		g.AddEdge(NodeID(rng.Intn(nv)), alphabet.Symbol(rng.Intn(len(labels))), NodeID(rng.Intn(nv)))
	}
	g.Freeze()
	return g
}

// BenchmarkPublishIncremental times one publication of a 64-edge delta
// on a 100k-edge graph through the overlay path (a compaction every
// maxDeltaChain-th iteration is amortized in, as in production).
func BenchmarkPublishIncremental(b *testing.B) {
	g := benchPublishGraph(20000, 100000)
	rng := rand.New(rand.NewSource(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for k := 0; k < 64; k++ {
			g.AddEdge(NodeID(rng.Intn(20000)), alphabet.Symbol(rng.Intn(8)), NodeID(rng.Intn(20000)))
		}
		b.StartTimer()
		_, st := g.SnapshotStats()
		if !st.Incremental {
			b.Fatal("publish fell off the incremental path")
		}
	}
}

// BenchmarkPublishFull times the from-scratch rebuild of both CSR
// directions on the same graph — what every publication cost before
// incremental publishing, and the denominator of the ≥10× criterion.
func BenchmarkPublishFull(b *testing.B) {
	g := benchPublishGraph(20000, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := fullCSR(g.out)
		in := fullCSR(g.in)
		if out.base.rowStart[len(out.base.rowStart)-1] != in.base.rowStart[len(in.base.rowStart)-1] {
			b.Fatal("direction edge counts diverged")
		}
	}
}

// BenchmarkPublishCompact times the overlay fold: each iteration first
// accumulates an overlay past the |E|/compactOverlayDivisor trigger
// (untimed), then times the publication that compacts it.
func BenchmarkPublishCompact(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// A fresh graph every iteration: repeatedly growing one graph by
		// |E|/divisor per round would compound past the delta-overflow
		// valve (2^20 edges) and fall off the incremental path entirely.
		g := benchPublishGraph(20000, 100000)
		// One publish well below the trigger to own an overlay, then a
		// delta that pushes past it.
		g.AddEdge(NodeID(rng.Intn(20000)), 0, NodeID(rng.Intn(20000)))
		if _, st := g.SnapshotStats(); st.Compacted {
			b.Fatal("warm-up publish compacted early")
		}
		// The trigger compares the overlay against |E| *including* the
		// delta itself, so solve ov*divisor > base+ov for ov.
		over := g.numEdges/(compactOverlayDivisor-1) + 64
		for k := 0; k < over; k++ {
			g.AddEdge(NodeID(rng.Intn(20000)), alphabet.Symbol(rng.Intn(8)), NodeID(rng.Intn(20000)))
		}
		b.StartTimer()
		_, st := g.SnapshotStats()
		if !st.Compacted {
			b.Fatal("publish did not compact")
		}
	}
}
