package graph

import (
	"sort"

	"pathquery/internal/alphabet"
	"pathquery/internal/bitset"
)

// This file implements the two-level read-side adjacency behind incremental
// publishing: an immutable base CSR (csr.go) plus a small per-epoch overlay
// holding fully rebuilt (sym, nbr)-sorted rows for only the nodes touched
// since the base was last compacted. Publishing an epoch merges the build
// window's delta edges into the previous epoch's overlay — O(|delta| +
// |overlay|) with no per-row sort — instead of rebuilding both CSR
// directions from scratch; a compaction pass (one linear merge, still no
// sorting) folds the overlay back into a fresh base once it outgrows a
// fraction of the edge set or the delta-chain fence depth.
//
// Read dispatch is a bitset membership test: rows of touched nodes come
// from the overlay, every other node takes the base fast path unchanged.
// Rows are identical to what a from-scratch buildCSR would produce — Edge
// values are pure (Sym, To) data, so equal keys are equal structs and the
// merge order is unobservable — which the overlay property test asserts
// bit-for-bit.

// adj is one direction's two-level adjacency: the immutable base CSR of
// the last compaction plus an optional overlay of rebuilt rows.
type adj struct {
	base csr
	ov   *overlay
}

// overlay holds the rebuilt rows of the nodes touched since the base was
// compacted. Rows are stored CSR-style: edges grouped by node in ascending
// node order, each row sorted (sym, nbr) with equal-symbol runs as
// segments; segOff carries the same one-sentinel contiguity invariant as
// csr.segOff, so a row's segment offsets are one subslice.
type overlay struct {
	touched  bitset.Bits       // nodes owning an overlay row
	nodes    []NodeID          // touched nodes, ascending
	segStart []int32           // len(nodes)+1
	segSym   []alphabet.Symbol // per-segment symbol, ascending within a row
	segOff   []int32           // len(nSegs)+1: segment s covers edges[segOff[s]:segOff[s+1]]
	edges    []Edge            // all overlay rows, grouped by node
	age      int               // publications since the base was compacted
}

// rowSegs is one node's segment view, uniform across base and overlay:
// segment k holds symbol syms[k] over edges[offs[k]:offs[k+1]].
type rowSegs struct {
	syms  []alphabet.Symbol
	offs  []int32
	edges []Edge
}

// rowIndex returns v's row position within the overlay; the caller must
// have checked touched.
func (o *overlay) rowIndex(v NodeID) int {
	lo, hi := 0, len(o.nodes)
	for lo < hi {
		mid := (lo + hi) >> 1
		if o.nodes[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// segs returns v's segment view: the overlay row when v was touched, the
// base row otherwise, and an empty row for nodes created after the base
// (they are either touched or edgeless).
func (a *adj) segs(v NodeID) rowSegs {
	// The touched test is bounds-checked by hand: apply and compact read
	// previous-epoch rows for nodes created after that epoch.
	if o := a.ov; o != nil {
		if w := int(v) >> 6; w < len(o.touched) && o.touched[w]&(1<<(uint(v)&63)) != 0 {
			i := o.rowIndex(v)
			lo, hi := o.segStart[i], o.segStart[i+1]
			return rowSegs{o.segSym[lo:hi], o.segOff[lo : hi+1], o.edges}
		}
	}
	if int(v) < len(a.base.rowStart)-1 {
		lo, hi := a.base.segStart[v], a.base.segStart[v+1]
		return rowSegs{a.base.segSym[lo:hi], a.base.segOff[lo : hi+1], a.base.edges}
	}
	return rowSegs{}
}

// row returns v's edges, sorted by (symbol, neighbor).
func (a *adj) row(v NodeID) []Edge {
	if a.ov == nil && int(v) < len(a.base.rowStart)-1 {
		return a.base.row(v) // compacted fast path
	}
	rs := a.segs(v)
	if len(rs.syms) == 0 {
		return nil
	}
	return rs.edges[rs.offs[0]:rs.offs[len(rs.syms)]]
}

// succ returns the edges of v labeled sym (sorted by neighbor, possibly
// with duplicates), as one contiguous slice.
func (a *adj) succ(v NodeID, sym alphabet.Symbol) []Edge {
	rs := a.segs(v)
	lo, hi := 0, len(rs.syms)
	for lo < hi {
		mid := (lo + hi) >> 1
		if rs.syms[mid] < sym {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(rs.syms) && rs.syms[lo] == sym {
		return rs.edges[rs.offs[lo]:rs.offs[lo+1]]
	}
	return nil
}

// degree returns the number of edges in v's row.
func (a *adj) degree(v NodeID) int { return len(a.row(v)) }

// overlayEdges returns the overlay size in edges (0 when compacted).
func (a *adj) overlayEdges() int {
	if a.ov == nil {
		return 0
	}
	return len(a.ov.edges)
}

// fullCSR wraps a from-scratch CSR as a compacted adjacency.
func fullCSR(build [][]Edge) adj { return adj{base: buildCSR(build)} }

// deltaRow is one node's share of a publication delta, sorted (sym, nbr).
type deltaRow struct {
	node  NodeID
	edges []Edge
}

// deltaRows regroups the build window's delta edges into per-node sorted
// rows for one direction: out rows keyed by From with Edge{Sym, To}, in
// rows keyed by To with Edge{Sym, From}. O(d log d).
func deltaRows(delta []DeltaEdge, out bool) []deltaRow {
	if len(delta) == 0 {
		return nil
	}
	type keyed struct {
		node NodeID
		e    Edge
	}
	ks := make([]keyed, len(delta))
	for i, de := range delta {
		if out {
			ks[i] = keyed{de.From, Edge{de.Sym, de.To}}
		} else {
			ks[i] = keyed{de.To, Edge{de.Sym, de.From}}
		}
	}
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].node != ks[j].node {
			return ks[i].node < ks[j].node
		}
		if ks[i].e.Sym != ks[j].e.Sym {
			return ks[i].e.Sym < ks[j].e.Sym
		}
		return ks[i].e.To < ks[j].e.To
	})
	var rows []deltaRow
	for i := 0; i < len(ks); {
		j := i
		node := ks[i].node
		edges := make([]Edge, 0, 4)
		for j < len(ks) && ks[j].node == node {
			edges = append(edges, ks[j].e)
			j++
		}
		rows = append(rows, deltaRow{node, edges})
		i = j
	}
	return rows
}

// apply returns the next epoch's adjacency: prev's base unchanged, with a
// fresh overlay holding every previously touched row (copied) plus the
// delta rows merged into their previous contents. nv is the new epoch's
// node count. Cost is O(|overlay| + |delta|), no sorting.
func (prev *adj) apply(rows []deltaRow, nv int) adj {
	var prevNodes []NodeID
	prevEdges, age := 0, 0
	if prev.ov != nil {
		prevNodes = prev.ov.nodes
		prevEdges = len(prev.ov.edges)
		age = prev.ov.age
	}
	deltaEdges := 0
	for _, r := range rows {
		deltaEdges += len(r.edges)
	}
	o := &overlay{
		touched: bitset.Make(nv),
		nodes:   make([]NodeID, 0, len(prevNodes)+len(rows)),
		edges:   make([]Edge, 0, prevEdges+deltaEdges),
		age:     age + 1,
	}
	if prev.ov != nil {
		copy(o.touched, prev.ov.touched)
	}

	emit := func(v NodeID, prevRow, delta []Edge) {
		o.nodes = append(o.nodes, v)
		o.touched.Set(int(v))
		if len(delta) == 0 {
			o.edges = append(o.edges, prevRow...)
			return
		}
		// Linear merge of two (sym, nbr)-sorted runs, duplicates kept.
		i, j := 0, 0
		for i < len(prevRow) && j < len(delta) {
			a, b := prevRow[i], delta[j]
			if a.Sym < b.Sym || (a.Sym == b.Sym && a.To <= b.To) {
				o.edges = append(o.edges, a)
				i++
			} else {
				o.edges = append(o.edges, b)
				j++
			}
		}
		o.edges = append(o.edges, prevRow[i:]...)
		o.edges = append(o.edges, delta[j:]...)
	}

	// Merge the ascending previous-overlay and delta node lists.
	pi, di := 0, 0
	rowEnds := make([]int32, 0, len(prevNodes)+len(rows))
	for pi < len(prevNodes) || di < len(rows) {
		switch {
		case di == len(rows) || (pi < len(prevNodes) && prevNodes[pi] < rows[di].node):
			emit(prevNodes[pi], prev.row(prevNodes[pi]), nil)
			pi++
		case pi == len(prevNodes) || rows[di].node < prevNodes[pi]:
			emit(rows[di].node, prev.row(rows[di].node), rows[di].edges)
			di++
		default: // same node in both
			emit(rows[di].node, prev.row(prevNodes[pi]), rows[di].edges)
			pi++
			di++
		}
		rowEnds = append(rowEnds, int32(len(o.edges)))
	}
	o.buildSegs(rowEnds)
	return adj{base: prev.base, ov: o}
}

// buildSegs derives the per-row segment tables from the grouped, sorted
// edge array in one linear pass; rowEnds[i] is the end offset of row i.
func (o *overlay) buildSegs(rowEnds []int32) {
	o.segStart = make([]int32, len(o.nodes)+1)
	start := int32(0)
	for r := range o.nodes {
		o.segStart[r] = int32(len(o.segSym))
		lo, hi := start, rowEnds[r]
		for i := lo; i < hi; {
			sym := o.edges[i].Sym
			o.segSym = append(o.segSym, sym)
			o.segOff = append(o.segOff, i)
			for i < hi && o.edges[i].Sym == sym {
				i++
			}
		}
		start = hi
	}
	o.segStart[len(o.nodes)] = int32(len(o.segSym))
	o.segOff = append(o.segOff, int32(len(o.edges)))
}

// compact folds the overlay into a fresh base CSR: one linear splice of
// already-sorted rows (overlay row when touched, base row otherwise), no
// per-row sort. total is the direction's edge count.
func (a *adj) compact(nv, total int) adj {
	c := csr{
		edges:    make([]Edge, 0, total),
		rowStart: make([]int32, nv+1),
		segStart: make([]int32, nv+1),
	}
	for v := 0; v < nv; v++ {
		c.rowStart[v] = int32(len(c.edges))
		c.edges = append(c.edges, a.row(NodeID(v))...)
	}
	c.rowStart[nv] = int32(len(c.edges))
	c.buildSegs()
	return adj{base: c}
}
