package graph

// White-box property test for incremental CSR publishing (overlay.go):
// across randomized mutation sequences — spanning several overlay
// compactions — every read surface of the published adjacency (row,
// succ, Step, SelectMonadicPlan) must be bit-identical to a from-scratch
// buildCSR of the same edge multiset. Edge values are pure (Sym, To)
// data, so "bit-identical" is plain struct equality over whole rows.

import (
	"fmt"
	"math/rand"
	"testing"

	"pathquery/internal/alphabet"
	"pathquery/internal/automata"
	"pathquery/internal/plan"
)

// requireAdjEqual asserts a and ref expose identical rows and successor
// slices for every node.
func requireAdjEqual(t *testing.T, what string, a, ref *adj, nv, nsym int) {
	t.Helper()
	for v := 0; v < nv; v++ {
		got, want := a.row(NodeID(v)), ref.row(NodeID(v))
		if len(got) != len(want) {
			t.Fatalf("%s: node %d row length %d, from-scratch %d", what, v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: node %d edge %d = %+v, from-scratch %+v", what, v, i, got[i], want[i])
			}
		}
		for sym := 0; sym < nsym; sym++ {
			gs, ws := a.succ(NodeID(v), alphabet.Symbol(sym)), ref.succ(NodeID(v), alphabet.Symbol(sym))
			if len(gs) != len(ws) {
				t.Fatalf("%s: succ(%d, %d) length %d, from-scratch %d", what, v, sym, len(gs), len(ws))
			}
			for i := range ws {
				if gs[i] != ws[i] {
					t.Fatalf("%s: succ(%d, %d)[%d] = %+v, from-scratch %+v", what, v, sym, i, gs[i], ws[i])
				}
			}
		}
	}
}

func TestOverlayPublishMatchesFromScratch(t *testing.T) {
	labels := []string{"a", "b", "c", "d"}
	const runs, steps = 6, 120
	var incremental, compacted int
	for run := 0; run < runs; run++ {
		rng := rand.New(rand.NewSource(int64(4200 + run)))
		g := New(alphabet.NewSorted(labels...))
		n := 4 + rng.Intn(6)
		for i := 0; i < n; i++ {
			g.AddNode(fmt.Sprintf("v%d", i))
		}
		d := automata.RandomNonEmptyDFA(rng, 2+rng.Intn(4), len(labels), 0.3+0.5*rng.Float64())
		plans := []*plan.Plan{plan.FromDFA(d), plan.Compile(d)}

		for step := 0; step < steps; step++ {
			// 1–8 edges per publish, occasionally a new node, occasional
			// duplicate edges (the multiset must survive the merges).
			for k := 1 + rng.Intn(8); k > 0; k-- {
				to := rng.Intn(n + 1)
				if to == n {
					n++
				}
				g.AddEdgeByName(
					fmt.Sprintf("v%d", rng.Intn(n)),
					labels[rng.Intn(len(labels))],
					fmt.Sprintf("v%d", to))
			}
			s, st := g.SnapshotStats()
			if st.Incremental {
				incremental++
			}
			if st.Compacted {
				compacted++
			}

			refOut := fullCSR(g.out)
			refIn := fullCSR(g.in)
			requireAdjEqual(t, fmt.Sprintf("run %d step %d out", run, step), &s.out, &refOut, s.nv, len(labels))
			requireAdjEqual(t, fmt.Sprintf("run %d step %d in", run, step), &s.in, &refIn, s.nv, len(labels))

			// Step and the plan evaluators read through the same segment
			// dispatch; cross-check them against a from-scratch graph
			// publishing its very first epoch (the buildCSR-only path).
			if step%10 == 0 {
				g2 := New(alphabet.NewSorted(labels...))
				for i := 0; i < n; i++ {
					g2.AddNode(fmt.Sprintf("v%d", i))
				}
				for v := 0; v < s.nv; v++ {
					for _, e := range refOut.row(NodeID(v)) {
						g2.AddEdge(NodeID(v), alphabet.Symbol(e.Sym), e.To)
					}
				}
				s2 := g2.Snapshot()
				set := []NodeID{NodeID(rng.Intn(n))}
				sym := alphabet.Symbol(rng.Intn(len(labels)))
				got, want := s.Step(set, sym), s2.Step(set, sym)
				if len(got) != len(want) {
					t.Fatalf("run %d step %d: Step length %d, from-scratch %d", run, step, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("run %d step %d: Step[%d] = %d, from-scratch %d", run, step, i, got[i], want[i])
					}
				}
				for pi, p := range plans {
					gs, ws := s.SelectMonadicPlan(p), s2.SelectMonadicPlan(p)
					for v := range ws {
						if gs[v] != ws[v] {
							t.Fatalf("run %d step %d plan %d: SelectMonadicPlan[%d] = %v, from-scratch %v",
								run, step, pi, v, gs[v], ws[v])
						}
					}
				}
			}
		}
	}
	if incremental == 0 || compacted < 2 {
		t.Fatalf("publish paths under-exercised: %d incremental, %d compactions", incremental, compacted)
	}
}
