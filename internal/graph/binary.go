package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"pathquery/internal/alphabet"
)

// Binary graph serialization — the checkpoint payload of internal/store.
//
// The format freezes one epoch snapshot: the alphabet prefix, the node
// name table in id order, and the edges in out-CSR order. Everything is
// little-endian; strings are u32-length-prefixed UTF-8. Reloading a
// checkpoint therefore reproduces the exact node ids and symbol ids of
// the serialized epoch, which is what makes recovered query answers
// byte-identical to the pre-crash engine's.
//
//	magic    "PQGRAPH1"
//	u32 nsym    then nsym strings  (labels, symbol order)
//	u32 nv      then nv strings    (node names, id order)
//	u64 ne      then ne edges      (u32 from, u32 sym, u32 to)
//
// The decoder is hardened against malformed and hostile input: every
// count and length is sanity-capped before allocation, node and symbol
// ids are bounds-checked while decoding, and all failures are
// descriptive errors — never a panic. Integrity (bit flips) is the
// caller's job; internal/store wraps the payload in a CRC32.

var binaryMagic = [8]byte{'P', 'Q', 'G', 'R', 'A', 'P', 'H', '1'}

// maxBinaryString caps one label or node name (1 MiB): a corrupt length
// prefix must not drive a giant allocation.
const maxBinaryString = 1 << 20

// WriteBinary serializes the snapshot in the binary checkpoint format.
func (s *Snapshot) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	// The alphabet may have grown past this epoch (interning is global and
	// append-only); serialize exactly the prefix the epoch was published
	// with, so symbol ids in the edge list are in range.
	writeU32(bw, uint32(s.nsym))
	for sym := 0; sym < s.nsym; sym++ {
		writeStr(bw, s.g.alpha.Name(alphabet.Symbol(sym)))
	}
	writeU32(bw, uint32(s.nv))
	for _, name := range s.names {
		writeStr(bw, name)
	}
	writeU64(bw, uint64(s.ne))
	for v := 0; v < s.nv; v++ {
		for _, e := range s.out.row(NodeID(v)) {
			writeU32(bw, uint32(v))
			writeU32(bw, uint32(e.Sym))
			writeU32(bw, uint32(e.To))
		}
	}
	return bw.Flush()
}

// ReadBinary decodes a graph serialized by WriteBinary. The returned
// graph owns a fresh alphabet with labels interned in serialized symbol
// order, so symbol ids and node ids match the serialized epoch exactly.
// Malformed input — truncation, out-of-range node or symbol ids,
// duplicate names, absurd counts — returns a descriptive error.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: binary: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("graph: binary: bad magic %q", magic[:])
	}
	nsym, err := readU32(br, "symbol count")
	if err != nil {
		return nil, err
	}
	if nsym > alphabet.MaxSymbols {
		return nil, fmt.Errorf("graph: binary: symbol count %d exceeds max %d", nsym, alphabet.MaxSymbols)
	}
	alpha := alphabet.New()
	for i := uint32(0); i < nsym; i++ {
		label, err := readStr(br, "label")
		if err != nil {
			return nil, err
		}
		if got := alpha.Intern(label); got != alphabet.Symbol(i) {
			return nil, fmt.Errorf("graph: binary: duplicate label %q (symbols %d and %d)", label, got, i)
		}
	}
	g := New(alpha)
	nv, err := readU32(br, "node count")
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nv; i++ {
		name, err := readStr(br, "node name")
		if err != nil {
			return nil, err
		}
		if got := g.AddNode(name); got != NodeID(i) {
			return nil, fmt.Errorf("graph: binary: duplicate node name %q (ids %d and %d)", name, got, i)
		}
	}
	ne, err := readU64(br, "edge count")
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ne; i++ {
		from, err := readU32(br, "edge tail")
		if err != nil {
			return nil, err
		}
		sym, err := readU32(br, "edge symbol")
		if err != nil {
			return nil, err
		}
		to, err := readU32(br, "edge head")
		if err != nil {
			return nil, err
		}
		if from >= nv || to >= nv {
			return nil, fmt.Errorf("graph: binary: edge %d: node id out of range (%d, %d) with %d nodes", i, from, to, nv)
		}
		if sym >= nsym {
			return nil, fmt.Errorf("graph: binary: edge %d: symbol id %d out of range with %d symbols", i, sym, nsym)
		}
		g.AddEdge(NodeID(from), alphabet.Symbol(sym), NodeID(to))
	}
	// Trailing garbage means the stream does not end where the header said
	// it would — refuse it rather than silently ignore it.
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("graph: binary: trailing data after %d edges", ne)
	}
	return g, nil
}

func writeU32(w *bufio.Writer, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func writeU64(w *bufio.Writer, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

func writeStr(w *bufio.Writer, s string) {
	writeU32(w, uint32(len(s)))
	w.WriteString(s)
}

func readU32(r *bufio.Reader, what string) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("graph: binary: reading %s: %w", what, err)
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func readU64(r *bufio.Reader, what string) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, fmt.Errorf("graph: binary: reading %s: %w", what, err)
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

func readStr(r *bufio.Reader, what string) (string, error) {
	n, err := readU32(r, what+" length")
	if err != nil {
		return "", err
	}
	if n > maxBinaryString {
		return "", fmt.Errorf("graph: binary: %s length %d exceeds max %d", what, n, maxBinaryString)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("graph: binary: reading %s: %w", what, err)
	}
	return string(buf), nil
}
