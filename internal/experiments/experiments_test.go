package experiments_test

import (
	"bytes"
	"strings"
	"testing"

	"pathquery/internal/datasets"
	"pathquery/internal/experiments"
	"pathquery/internal/query"
)

func TestRunStaticShape(t *testing.T) {
	g := datasets.ScaleFree(datasets.ScaleFreeConfig{
		Nodes: 500, Edges: 1500, Labels: 8, ZipfS: 1, Seed: 17,
	})
	goal := datasets.SynQueries(g)[2]
	cfg := experiments.StaticConfig{
		Fractions: []float64{0.02, 0.10, 0.30},
		Trials:    2,
		Seed:      1,
	}
	series := experiments.RunStatic(g, goal, cfg)
	if len(series.Points) != 3 {
		t.Fatalf("%d points", len(series.Points))
	}
	for _, p := range series.Points {
		if p.F1 < 0 || p.F1 > 1 {
			t.Fatalf("F1 out of range: %v", p.F1)
		}
	}
	// The paper's headline static shape: more labels, better F1 (weakly,
	// comparing the extremes to tolerate trial noise).
	if series.Points[2].F1+1e-9 < series.Points[0].F1 {
		t.Fatalf("F1 decreased with more labels: %v -> %v",
			series.Points[0].F1, series.Points[2].F1)
	}
}

func TestRunStaticDeterministic(t *testing.T) {
	g := datasets.ScaleFree(datasets.ScaleFreeConfig{
		Nodes: 300, Edges: 900, Labels: 6, ZipfS: 1, Seed: 23,
	})
	goal := datasets.SynQueries(g)[1]
	cfg := experiments.StaticConfig{Fractions: []float64{0.05}, Trials: 2, Seed: 9}
	a := experiments.RunStatic(g, goal, cfg)
	b := experiments.RunStatic(g, goal, cfg)
	if a.Points[0].F1 != b.Points[0].F1 {
		t.Fatalf("non-deterministic: %v vs %v", a.Points[0].F1, b.Points[0].F1)
	}
}

func TestRunStaticAllParallelMatchesSequential(t *testing.T) {
	g := datasets.ScaleFree(datasets.ScaleFreeConfig{
		Nodes: 300, Edges: 900, Labels: 6, ZipfS: 1, Seed: 29,
	})
	goals := datasets.SynQueries(g)
	cfg := experiments.StaticConfig{Fractions: []float64{0.05}, Trials: 1, Seed: 4}
	parallel := experiments.RunStaticAll(g, goals, cfg)
	for i, goal := range goals {
		seq := experiments.RunStatic(g, goal, cfg)
		if parallel[i].Points[0].F1 != seq.Points[0].F1 {
			t.Fatalf("query %s: parallel %v != sequential %v",
				goal.Name, parallel[i].Points[0].F1, seq.Points[0].F1)
		}
	}
}

func TestLabelsNeededStatic(t *testing.T) {
	g := datasets.ScaleFree(datasets.ScaleFreeConfig{
		Nodes: 200, Edges: 600, Labels: 6, ZipfS: 1, Seed: 31,
	})
	goal := datasets.SynQueries(g)[2]
	cfg := experiments.StaticConfig{
		Fractions: []float64{0.05, 0.20},
		Trials:    1,
		Seed:      2,
	}
	needed := experiments.LabelsNeededStatic(g, goal, cfg)
	if needed <= 0 || needed > 1 {
		t.Fatalf("needed = %v", needed)
	}
}

func TestRunInteractiveRows(t *testing.T) {
	g := datasets.ScaleFree(datasets.ScaleFreeConfig{
		Nodes: 300, Edges: 900, Labels: 6, ZipfS: 1, Seed: 37,
	})
	goal := datasets.SynQueries(g)[2]
	rows := experiments.RunInteractive("test", g, goal, experiments.InteractiveConfig{
		Seed:            1,
		MaxInteractions: 150,
	})
	if len(rows) != 2 {
		t.Fatalf("%d rows, want kR and kS", len(rows))
	}
	for _, r := range rows {
		if r.Strategy != "kR" && r.Strategy != "kS" {
			t.Fatalf("strategy %q", r.Strategy)
		}
		if r.Labels <= 0 {
			t.Fatalf("%s: no labels", r.Strategy)
		}
		if r.F1 < 0 || r.F1 > 1 {
			t.Fatalf("%s: F1 = %v", r.Strategy, r.F1)
		}
		if r.StaticNeeded != -1 {
			t.Fatalf("static baseline not requested but = %v", r.StaticNeeded)
		}
	}
}

func TestTable1RowsAndPrinting(t *testing.T) {
	g := datasets.AliBaba()
	qs := datasets.BioQueries(g)
	rows := experiments.Table1(g, qs)
	if len(rows) != 6 {
		t.Fatalf("%d rows", len(rows))
	}
	var buf bytes.Buffer
	experiments.PrintTable1(&buf, rows)
	out := buf.String()
	for _, want := range []string{"bio1", "bio6", "selectivity"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestPrintAndCSVWriters(t *testing.T) {
	g := datasets.ScaleFree(datasets.ScaleFreeConfig{
		Nodes: 200, Edges: 600, Labels: 6, ZipfS: 1, Seed: 41,
	})
	goal := datasets.SynQueries(g)[2]
	cfg := experiments.StaticConfig{Fractions: []float64{0.05}, Trials: 1, Seed: 3}
	series := []experiments.StaticSeries{experiments.RunStatic(g, goal, cfg)}

	var buf bytes.Buffer
	experiments.PrintStaticSeries(&buf, series)
	if !strings.Contains(buf.String(), "F1") {
		t.Fatal("static print missing header")
	}
	buf.Reset()
	if err := experiments.WriteStaticCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 2 {
		t.Fatalf("CSV lines = %d, want header + 1 row", lines)
	}

	rows := experiments.RunInteractive("t", g, goal, experiments.InteractiveConfig{
		Seed: 1, MaxInteractions: 60,
	})
	buf.Reset()
	experiments.PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "kS") {
		t.Fatal("table2 print missing strategy")
	}
	buf.Reset()
	if err := experiments.WriteTable2CSV(&buf, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "kR") {
		t.Fatal("table2 CSV missing strategy")
	}
}

func TestAblationGeneralization(t *testing.T) {
	g := datasets.ScaleFree(datasets.ScaleFreeConfig{
		Nodes: 300, Edges: 900, Labels: 6, ZipfS: 1, Seed: 43,
	})
	goals := datasets.SynQueries(g)[2:]
	rows := experiments.RunAblationGeneralization(g, goals, 0.10,
		experiments.StaticConfig{Trials: 1, Seed: 5})
	if len(rows) != 1 {
		t.Fatalf("%d rows", len(rows))
	}
	var buf bytes.Buffer
	experiments.PrintAblation(&buf, rows)
	if !strings.Contains(buf.String(), "advantage") {
		t.Fatal("ablation print missing header")
	}
}

func TestKDistribution(t *testing.T) {
	series := []experiments.StaticSeries{{
		Points: []experiments.StaticPoint{{K: 2}, {K: 2}, {K: 3}, {K: 0}},
	}}
	dist := experiments.KDistribution(series)
	if dist[2] != 2 || dist[3] != 1 || dist[0] != 0 {
		t.Fatalf("dist = %v", dist)
	}
}

func TestStaticHandlesAbstain(t *testing.T) {
	// A goal selecting nothing yields samples with no positives: the
	// learner abstains and the harness must score the empty prediction.
	g := datasets.ScaleFree(datasets.ScaleFreeConfig{
		Nodes: 100, Edges: 300, Labels: 6, ZipfS: 1, Seed: 47,
	})
	// A label that does not occur twice in a row: selectivity 0.
	q, err := query.Parse(g.Alphabet(), "zz·zz")
	if err != nil {
		t.Fatal(err)
	}
	nq := datasets.NamedQuery{Name: "never", Expr: "zz·zz", Query: q}
	series := experiments.RunStatic(g, nq, experiments.StaticConfig{
		Fractions: []float64{0.1}, Trials: 1, Seed: 1,
	})
	p := series.Points[0]
	if p.Abstained != 1 {
		t.Fatalf("abstained = %d", p.Abstained)
	}
	// Empty goal vs empty prediction: perfect score by convention.
	if p.F1 != 1 {
		t.Fatalf("F1 = %v", p.F1)
	}
}
