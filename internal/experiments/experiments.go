// Package experiments regenerates the paper's evaluation (Section 5):
// Table 1 (query selectivities), Figures 11 and 12 (static-protocol F1 and
// learning time as functions of the labeled fraction), Table 2 (the
// interactive protocol summary), and the two ablations the text discusses
// (generalization contribution, dynamic-k schedule). The same runners back
// cmd/pqbench and the root-level benchmarks.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"pathquery/internal/core"
	"pathquery/internal/datasets"
	"pathquery/internal/graph"
	"pathquery/internal/interactive"
	"pathquery/internal/metrics"
)

// DefaultFractions is the labeled-fraction sweep of the static experiments
// (Figures 11 and 12 plot F1 and time against this axis).
var DefaultFractions = []float64{0.001, 0.005, 0.01, 0.02, 0.03, 0.05, 0.07, 0.10, 0.15, 0.22, 0.30}

// StaticPoint is one x-position of a Figure 11/12 series, averaged over
// trials.
type StaticPoint struct {
	Fraction  float64
	F1        float64
	Precision float64
	Recall    float64
	LearnTime time.Duration
	// Abstained counts trials where the learner returned no query (its
	// prediction then selects nothing).
	Abstained int
	// K is the mean final SCP bound of the dynamic schedule.
	K float64
}

// StaticSeries is a full Figure 11/12 line for one goal query.
type StaticSeries struct {
	Query  datasets.NamedQuery
	Points []StaticPoint
}

// StaticConfig tunes the static runner.
type StaticConfig struct {
	Fractions []float64
	Trials    int
	Seed      int64
	Learner   core.Options
}

func (c StaticConfig) withDefaults() StaticConfig {
	if len(c.Fractions) == 0 {
		c.Fractions = DefaultFractions
	}
	if c.Trials == 0 {
		c.Trials = 3
	}
	return c
}

// RunStatic reproduces one Figure 11/12 series: draw a random sample of
// each size, learn, and score the learned query against the goal as a
// binary node classifier.
func RunStatic(g *graph.Graph, goal datasets.NamedQuery, cfg StaticConfig) StaticSeries {
	cfg = cfg.withDefaults()
	// Pin one epoch snapshot before timing starts: the CSR build is a
	// one-time setup cost that must not be attributed to the first trial's
	// LearnTime, and every learn/score pass below evaluates compiled plans
	// against the same immutable epoch.
	snap := g.Snapshot()
	series := StaticSeries{Query: goal}
	goalSel := goal.Query.EvaluateOn(snap).Vector()
	for fi, fraction := range cfg.Fractions {
		var pt StaticPoint
		pt.Fraction = fraction
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(1000*fi+trial)))
			pos, neg := datasets.RandomSample(g, goal.Query, fraction, rng)
			sample := core.Sample{Pos: pos, Neg: neg}
			start := time.Now()
			res, err := core.LearnDetailedOn(snap, sample, cfg.Learner)
			pt.LearnTime += time.Since(start)
			var predicted []bool
			if err != nil {
				pt.Abstained++
				predicted = make([]bool, snap.NumNodes())
			} else {
				predicted = res.Query.EvaluateOn(snap).Vector()
				pt.K += float64(res.K)
			}
			score := metrics.Score(goalSel, predicted)
			pt.F1 += score.F1()
			pt.Precision += score.Precision()
			pt.Recall += score.Recall()
		}
		n := float64(cfg.Trials)
		pt.F1 /= n
		pt.Precision /= n
		pt.Recall /= n
		pt.LearnTime /= time.Duration(cfg.Trials)
		if learned := cfg.Trials - pt.Abstained; learned > 0 {
			pt.K /= float64(learned)
		}
		series.Points = append(series.Points, pt)
	}
	return series
}

// RunStaticAll runs a series per goal query, in parallel across queries.
func RunStaticAll(g *graph.Graph, goals []datasets.NamedQuery, cfg StaticConfig) []StaticSeries {
	out := make([]StaticSeries, len(goals))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.NumCPU())
	for i, goal := range goals {
		wg.Add(1)
		go func(i int, goal datasets.NamedQuery) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i] = RunStatic(g, goal, cfg)
		}(i, goal)
	}
	wg.Wait()
	return out
}

// LabelsNeededStatic sweeps the fraction axis upward and returns the
// smallest fraction at which every trial reaches F1 = 1 — the paper's
// "Labels needed for F1 score = 1 without interactions" column of Table 2.
// Returns 1.0 if even labeling everything is needed (which always
// suffices: the full labeling is a characteristic-or-better sample only if
// the graph admits one, so the fallback reports the whole graph).
func LabelsNeededStatic(g *graph.Graph, goal datasets.NamedQuery, cfg StaticConfig) float64 {
	cfg = cfg.withDefaults()
	snap := g.Snapshot()
	goalSel := goal.Query.EvaluateOn(snap).Vector()
	fractions := append([]float64{}, cfg.Fractions...)
	fractions = append(fractions, 0.5, 0.66, 0.87, 1.0)
	sort.Float64s(fractions)
	for _, fraction := range fractions {
		allPerfect := true
		for trial := 0; trial < cfg.Trials; trial++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(7777*trial) + int64(fraction*1e6)))
			pos, neg := datasets.RandomSample(g, goal.Query, fraction, rng)
			res, err := core.LearnDetailedOn(snap, core.Sample{Pos: pos, Neg: neg}, cfg.Learner)
			if err != nil {
				allPerfect = false
				break
			}
			if !metrics.Score(goalSel, res.Query.EvaluateOn(snap).Vector()).Exact() {
				allPerfect = false
				break
			}
		}
		if allPerfect {
			return fraction
		}
	}
	return 1.0
}

// InteractiveRow is one row of Table 2.
type InteractiveRow struct {
	Dataset      string
	QueryName    string
	GraphNodes   int
	StaticNeeded float64 // fraction of nodes, without interactions
	Strategy     string
	Labels       int
	LabelsFrac   float64
	MeanTime     time.Duration
	Halted       interactive.HaltReason
	// F1 is the final learned query's score against the goal: 1 when the
	// session halted satisfied, possibly lower when it hit a budget cap.
	F1 float64
}

// InteractiveConfig tunes the interactive runner.
type InteractiveConfig struct {
	Seed int64
	// MaxInteractions caps a session (0: |V|).
	MaxInteractions int
	// StaticBaseline controls whether the expensive "without interactions"
	// column is computed (it sweeps static samples to F1=1).
	StaticBaseline bool
	Static         StaticConfig
}

// RunInteractive reproduces the Table 2 rows for one goal on one graph,
// with the paper's two strategies.
func RunInteractive(dataset string, g *graph.Graph, goal datasets.NamedQuery, cfg InteractiveConfig) []InteractiveRow {
	return RunInteractiveStrategies(dataset, g, goal,
		[]interactive.Strategy{interactive.KR{}, interactive.KS{}}, cfg)
}

// RunInteractiveStrategies is RunInteractive with caller-chosen strategies
// (used by the sampled-session experiments of the §6 future work).
func RunInteractiveStrategies(dataset string, g *graph.Graph, goal datasets.NamedQuery, strategies []interactive.Strategy, cfg InteractiveConfig) []InteractiveRow {
	staticNeeded := -1.0
	if cfg.StaticBaseline {
		staticNeeded = LabelsNeededStatic(g, goal, cfg.Static)
	}
	var rows []InteractiveRow
	for _, strat := range strategies {
		sess := interactive.NewSession(g, interactive.Options{
			Strategy:        strat,
			Seed:            cfg.Seed,
			MaxInteractions: cfg.MaxInteractions,
		})
		oracle := interactive.NewQueryOracle(g, goal.Query)
		res, err := sess.Run(oracle, interactive.ExactMatch(g, goal.Query))
		if err != nil {
			// Interactive sessions over oracle labels cannot produce invalid
			// samples; an error here is a bug worth surfacing loudly.
			panic(fmt.Sprintf("experiments: interactive run failed: %v", err))
		}
		f1 := 0.0
		if res.Query != nil {
			f1 = metrics.F1(oracle.Selection(), res.Query.Select(g))
		}
		rows = append(rows, InteractiveRow{
			Dataset:      dataset,
			QueryName:    goal.Name,
			GraphNodes:   g.NumNodes(),
			StaticNeeded: staticNeeded,
			Strategy:     strat.Name(),
			Labels:       res.Labels(),
			LabelsFrac:   res.LabelFraction(g),
			MeanTime:     res.MeanTimeBetweenInteractions(),
			Halted:       res.Halted,
			F1:           f1,
		})
	}
	return rows
}

// Table1Row pairs a query with measured and paper-reported selectivity.
type Table1Row struct {
	Name             string
	Expr             string
	Selectivity      float64
	PaperSelectivity float64
	SelectedNodes    int
}

// Table1 measures the bio-query selectivities on the AliBaba stand-in.
// One epoch snapshot is pinned for the whole table, so every query's
// compiled plan evaluates against the same immutable CSR.
func Table1(g *graph.Graph, queries []datasets.NamedQuery) []Table1Row {
	snap := g.Snapshot()
	rows := make([]Table1Row, len(queries))
	for i, nq := range queries {
		sel := nq.Query.EvaluateOn(snap)
		rows[i] = Table1Row{
			Name:             nq.Name,
			Expr:             nq.Expr,
			Selectivity:      sel.Selectivity(),
			PaperSelectivity: nq.PaperSelectivity,
			SelectedNodes:    sel.Count(),
		}
	}
	return rows
}

// PrintTable1 renders Table 1 rows.
func PrintTable1(w io.Writer, rows []Table1Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "query\tselected\tselectivity\tpaper\texpr")
	for _, r := range rows {
		expr := r.Expr
		if len(expr) > 60 {
			expr = expr[:57] + "..."
		}
		fmt.Fprintf(tw, "%s\t%d\t%.4f%%\t%.4f%%\t%s\n",
			r.Name, r.SelectedNodes, 100*r.Selectivity, 100*r.PaperSelectivity, expr)
	}
	tw.Flush()
}

// PrintStaticSeries renders Figure 11/12 series as aligned text: one block
// per query with F1 and learning time per fraction.
func PrintStaticSeries(w io.Writer, series []StaticSeries) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "query\t%labeled\tF1\tprecision\trecall\tlearn_time\tmean_k\tabstained")
	for _, s := range series {
		for _, p := range s.Points {
			fmt.Fprintf(tw, "%s\t%.2f%%\t%.3f\t%.3f\t%.3f\t%v\t%.1f\t%d\n",
				s.Query.Name, 100*p.Fraction, p.F1, p.Precision, p.Recall,
				p.LearnTime.Round(time.Microsecond), p.K, p.Abstained)
		}
	}
	tw.Flush()
}

// PrintTable2 renders interactive rows.
func PrintTable2(w io.Writer, rows []InteractiveRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "dataset\tquery\tnodes\tstatic_labels_F1=1\tstrategy\tlabels\t%labels\ttime/interaction\tF1\thalt")
	for _, r := range rows {
		staticCol := "-"
		if r.StaticNeeded >= 0 {
			staticCol = fmt.Sprintf("%.0f%%", 100*r.StaticNeeded)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%s\t%s\t%d\t%.2f%%\t%v\t%.3f\t%v\n",
			r.Dataset, r.QueryName, r.GraphNodes, staticCol, r.Strategy,
			r.Labels, 100*r.LabelsFrac, r.MeanTime.Round(time.Microsecond), r.F1, r.Halted)
	}
	tw.Flush()
}

// WriteStaticCSV emits Figure 11/12 data as CSV for external plotting.
func WriteStaticCSV(w io.Writer, series []StaticSeries) error {
	if _, err := fmt.Fprintln(w, "query,fraction,f1,precision,recall,learn_seconds,mean_k,abstained"); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%.4f,%.4f,%.4f,%.4f,%.6f,%.2f,%d\n",
				s.Query.Name, p.Fraction, p.F1, p.Precision, p.Recall,
				p.LearnTime.Seconds(), p.K, p.Abstained); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteTable2CSV emits Table 2 data as CSV.
func WriteTable2CSV(w io.Writer, rows []InteractiveRow) error {
	if _, err := fmt.Fprintln(w, "dataset,query,nodes,static_needed,strategy,labels,labels_fraction,mean_seconds,f1,halt"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%.4f,%s,%d,%.6f,%.6f,%.4f,%s\n",
			r.Dataset, r.QueryName, r.GraphNodes, r.StaticNeeded, r.Strategy,
			r.Labels, r.LabelsFrac, r.MeanTime.Seconds(), r.F1, r.Halted); err != nil {
			return err
		}
	}
	return nil
}

// AblationGeneralization compares static F1 with and without the merge
// phase — §5.2 reports the generalization's contribution is ≈1% of F1.
type AblationGeneralization struct {
	Query       string
	Fraction    float64
	F1Full      float64
	F1NoMerge   float64
	F1Advantage float64
}

// RunAblationGeneralization measures the merge phase's contribution at one
// fraction per query.
func RunAblationGeneralization(g *graph.Graph, goals []datasets.NamedQuery, fraction float64, cfg StaticConfig) []AblationGeneralization {
	cfg = cfg.withDefaults()
	cfg.Fractions = []float64{fraction}
	var out []AblationGeneralization
	for _, goal := range goals {
		full := RunStatic(g, goal, cfg)
		noMerge := cfg
		noMerge.Learner.DisableGeneralization = true
		ablated := RunStatic(g, goal, noMerge)
		out = append(out, AblationGeneralization{
			Query:       goal.Name,
			Fraction:    fraction,
			F1Full:      full.Points[0].F1,
			F1NoMerge:   ablated.Points[0].F1,
			F1Advantage: full.Points[0].F1 - ablated.Points[0].F1,
		})
	}
	return out
}

// PrintAblation renders the generalization ablation.
func PrintAblation(w io.Writer, rows []AblationGeneralization) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "query\t%labeled\tF1_full\tF1_no_merge\tadvantage")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.3f\t%.3f\t%+.3f\n",
			r.Query, 100*r.Fraction, r.F1Full, r.F1NoMerge, r.F1Advantage)
	}
	tw.Flush()
}

// KDistribution tallies the dynamic schedule's final k over static runs —
// §5.1 reports k = 2 suffices in the majority of cases, reaching 4 in
// isolated ones.
func KDistribution(series []StaticSeries) map[int]int {
	out := make(map[int]int)
	for _, s := range series {
		for _, p := range s.Points {
			if p.K > 0 {
				out[int(p.K+0.5)]++
			}
		}
	}
	return out
}
