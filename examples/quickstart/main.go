// Quickstart: the paper's Section 1 scenario (Figure 1). A commuter wants
// "neighborhoods from which I can reach a cinema by public transportation"
// but cannot write the regular expression (tram+bus)*·cinema. She labels
// N2 and N6 as wanted and N5 as unwanted; the learner infers a query that
// behaves exactly like her intended one.
package main

import (
	"fmt"
	"log"

	"pathquery"
)

func main() {
	g := pathquery.NewGraph(nil)
	for _, e := range [][3]string{
		{"N1", "tram", "N4"},
		{"N2", "bus", "N1"},
		{"N2", "bus", "N3"},
		{"N4", "cinema", "C1"},
		{"N4", "tram", "N1"},
		{"N6", "cinema", "C2"},
		{"N6", "bus", "N5"},
		{"N5", "restaurant", "R1"},
		{"N5", "tram", "N3"},
		{"N3", "restaurant", "R2"},
	} {
		g.AddEdgeByName(e[0], e[1], e[2])
	}
	fmt.Println("graph:", g)

	node := func(name string) pathquery.NodeID {
		id, ok := g.NodeByName(name)
		if !ok {
			log.Fatalf("no node %q", name)
		}
		return id
	}

	goal, err := pathquery.ParseQuery(g.Alphabet(), "(tram+bus)*·cinema")
	if err != nil {
		log.Fatal(err)
	}

	// Round 1 — the paper's initial feedback: she wants N2 and N6, not N5.
	sample := pathquery.Sample{
		Pos: []pathquery.NodeID{node("N2"), node("N6")},
		Neg: []pathquery.NodeID{node("N5")},
	}
	learned, err := pathquery.Learn(g, sample, pathquery.Options{})
	if err != nil {
		log.Fatalf("learner abstained: %v", err)
	}
	fmt.Println("round 1 learned:", learned)
	fmt.Printf("round 1 F1 against the goal: %.2f\n",
		pathquery.Score(g, goal, learned).F1())
	// "bus" is consistent with three labels, but misses N1 and N4 — the
	// user is not satisfied yet and labels three more nodes.

	sample.Pos = append(sample.Pos, node("N1"), node("N4"))
	sample.Neg = append(sample.Neg, node("N3"))
	learned, err = pathquery.Learn(g, sample, pathquery.Options{})
	if err != nil {
		log.Fatalf("learner abstained: %v", err)
	}
	fmt.Println("round 2 learned:", learned)
	fmt.Println("selected neighborhoods:")
	for _, v := range learned.SelectNodes(g) {
		fmt.Println("  ", g.NodeName(v))
	}
	fmt.Printf("selects the same nodes as (tram+bus)*·cinema: %v\n",
		learned.EquivalentOn(g, goal))
	fmt.Printf("round 2 F1 against the goal: %.2f\n",
		pathquery.Score(g, goal, learned).F1())
}
