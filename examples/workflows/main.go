// Workflow mining: the paper's Section 1 biology scenario (Figure 2). A
// biologist wants interrelated scientific workflows matching
//
//	ProteinPurification · ProteinSeparation* · MassSpectrometry
//
// but labels workflow entry points as positive/negative examples instead
// of writing the pattern. Workflows are module sequences; the paper
// represents module names on edges.
package main

import (
	"fmt"
	"log"

	"pathquery"
)

// workflow encodes one chain of processing modules as labeled edges
// between anonymous stage nodes.
type workflow struct {
	name    string
	modules []string
}

func main() {
	g := pathquery.NewGraph(nil)
	flows := []workflow{
		{"wf1", []string{"ProteinPurification", "MassSpectrometry"}},
		{"wf2", []string{"ProteinPurification", "ProteinSeparation", "MassSpectrometry"}},
		{"wf3", []string{"ProteinPurification", "ProteinSeparation", "ProteinSeparation", "MassSpectrometry"}},
		{"wf4", []string{"SampleCollection", "ProteinPurification"}},
		{"wf5", []string{"ProteinPurification", "ProteinSeparation", "GelImaging"}},
		{"wf6", []string{"RNAExtraction", "Sequencing", "MassSpectrometry"}},
	}
	for _, wf := range flows {
		prev := wf.name
		for i, m := range wf.modules {
			next := fmt.Sprintf("%s_s%d", wf.name, i+1)
			g.AddEdgeByName(prev, m, next)
			prev = next
		}
	}
	fmt.Println("graph:", g)

	node := func(name string) pathquery.NodeID {
		id, ok := g.NodeByName(name)
		if !ok {
			log.Fatalf("no node %q", name)
		}
		return id
	}

	// The biologist marks the matching workflows positively, the
	// non-matching ones negatively — and also two mid-workflow stages,
	// since a pipeline resumed after purification does not count.
	sample := pathquery.Sample{
		Pos: []pathquery.NodeID{node("wf1"), node("wf2"), node("wf3")},
		Neg: []pathquery.NodeID{
			node("wf4"), node("wf5"), node("wf6"),
			node("wf2_s1"), node("wf3_s2"),
		},
	}
	res, err := pathquery.LearnDetailed(g, sample, pathquery.Options{})
	if err != nil {
		log.Fatalf("learner abstained: %v", err)
	}
	fmt.Println("learned pattern:", res.Query)
	fmt.Println("SCP bound k used:", res.K)

	fmt.Println("workflows matching the learned pattern:")
	for _, v := range res.Query.SelectNodes(g) {
		name := g.NodeName(v)
		if len(name) > 3 && name[3] == '_' {
			continue // internal stage nodes
		}
		fmt.Println("  ", name)
	}

	goal, err := pathquery.ParseQuery(g.Alphabet(),
		"ProteinPurification·ProteinSeparation*·MassSpectrometry")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equivalent to the intended pattern on these workflows: %v\n",
		res.Query.EquivalentOn(g, goal))
}
