// Serving: drive the concurrent query-serving engine through the same
// HTTP API cmd/pqserve exposes. The example stands the handler up on a
// loopback listener, then walks the serving lifecycle: select (cold, then
// cached), a batch sharing one epoch, a mutation publishing a new epoch
// that invalidates the cached result, and the stats counters that record
// all of it.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"pathquery"
)

func main() {
	g := pathquery.NewGraph(nil)
	for _, e := range [][3]string{
		{"N1", "tram", "N4"},
		{"N2", "bus", "N1"},
		{"N4", "cinema", "C1"},
		{"N6", "cinema", "C2"},
		{"N6", "bus", "N5"},
		{"N5", "tram", "N3"},
	} {
		g.AddEdgeByName(e[0], e[1], e[2])
	}

	engine := pathquery.NewEngine(g, pathquery.EngineOptions{})
	srv := httptest.NewServer(pathquery.NewEngineHandler(engine))
	defer srv.Close()
	fmt.Println("pqserve-compatible API listening on", srv.URL)

	// Cold select: compiles the plan, runs one product pass, caches both.
	sel := post(srv.URL+"/select", `{"query": "(tram+bus)*·cinema"}`)
	fmt.Printf("select (tram+bus)*·cinema -> epoch %v, nodes %v, cached %v\n",
		sel["epoch"], sel["nodes"], sel["cached"])

	// Repeat — even as a syntactic variant — is served from the caches.
	sel = post(srv.URL+"/select", `{"query": "(bus+tram)*.cinema"}`)
	fmt.Printf("variant (bus+tram)*.cinema  -> epoch %v, nodes %v, cached %v\n",
		sel["epoch"], sel["nodes"], sel["cached"])

	// A batch evaluates every query against one pinned epoch.
	batch := post(srv.URL+"/batch", `{"queries": ["tram·cinema", "bus·tram", "cinema"]}`)
	fmt.Printf("batch of 3 -> shared epoch %v\n", batch["epoch"])

	// A mutation publishes a new epoch; the stale cached result is gone.
	mut := post(srv.URL+"/mutate", `{"edges": [{"from": "N3", "label": "cinema", "to": "C3"}]}`)
	fmt.Printf("mutate N3 -cinema-> C3 -> epoch %v (%v nodes, %v edges)\n",
		mut["epoch"], mut["nodes"], mut["edges"])
	sel = post(srv.URL+"/select", `{"query": "(tram+bus)*·cinema"}`)
	fmt.Printf("select after mutation    -> epoch %v, nodes %v, cached %v\n",
		sel["epoch"], sel["nodes"], sel["cached"])

	// The learner is a service of the same engine: /learn pins the served
	// epoch, runs Algorithm 1 on it, and installs the learned query as a
	// serving plan — the returned expression answers /select from the
	// warmed caches immediately.
	learned := post(srv.URL+"/learn", `{"pos": ["N2"], "neg": ["N5"]}`)
	fmt.Printf("learn +N2 -N5 -> query %v (k=%v, SCPs %v), selects %v\n",
		learned["query"], learned["k"], learned["scps"],
		learned["selection"].(map[string]any)["nodes"])
	q, _ := json.Marshal(map[string]any{"query": learned["query"]})
	sel = post(srv.URL+"/select", string(q))
	fmt.Printf("select learned query     -> epoch %v, nodes %v, cached %v\n",
		sel["epoch"], sel["nodes"], sel["cached"])

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats pathquery.EngineStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: epoch %d, %d queries over %d plans (plan hits %d), "+
		"result hits %d, misses %d\n",
		stats.Epoch, stats.Queries, stats.Plans, stats.PlanHits,
		stats.ResultHits, stats.ResultMisses)
}

func post(url, body string) map[string]any {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %v", url, out)
	}
	return out
}
