// Serving: drive the concurrent query-serving engine through the same
// HTTP API cmd/pqserve exposes. The example stands the handler up on a
// loopback listener, then walks the serving lifecycle on the unified
// /v1/query protocol: one endpoint, five result shapes (nodes, pairsFrom,
// witness, count, shortest), a batch sharing one epoch, a mutation
// publishing a new epoch that invalidates the cached answer, learning,
// and the structured error envelope.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"pathquery"
)

func main() {
	g := pathquery.NewGraph(nil)
	for _, e := range [][3]string{
		{"N1", "tram", "N4"},
		{"N2", "bus", "N1"},
		{"N4", "cinema", "C1"},
		{"N6", "cinema", "C2"},
		{"N6", "bus", "N5"},
		{"N5", "tram", "N3"},
	} {
		g.AddEdgeByName(e[0], e[1], e[2])
	}

	engine := pathquery.NewEngine(g, pathquery.EngineOptions{})
	srv := httptest.NewServer(pathquery.NewEngineHandler(engine))
	defer srv.Close()
	fmt.Println("pqserve-compatible API listening on", srv.URL)

	// Cold query: compiles the plan, runs one product pass, caches both.
	ans := post(srv.URL+"/v1/query", `{"query": "(tram+bus)*·cinema"}`)
	fmt.Printf("nodes    -> epoch %v, nodes %v, cached %v\n",
		ans["epoch"], ans["nodes"], ans["cached"])

	// Repeat — even as a syntactic variant — is served from the caches.
	ans = post(srv.URL+"/v1/query", `{"query": "(bus+tram)*.cinema"}`)
	fmt.Printf("variant  -> epoch %v, nodes %v, cached %v\n",
		ans["epoch"], ans["nodes"], ans["cached"])

	// The same endpoint serves every result shape: witness returns one
	// reconstructed accepting path per selected node...
	ans = post(srv.URL+"/v1/query", `{"query": "(tram+bus)*·cinema", "semantics": "witness", "limit": 2}`)
	fmt.Printf("witness  -> count %v, paths %v\n", ans["count"], ans["paths"])

	// ...count the distinct accepting path lengths per node...
	ans = post(srv.URL+"/v1/query", `{"query": "(tram+bus)*·cinema", "semantics": "count"}`)
	fmt.Printf("count    -> %v\n", ans["counts"])

	// ...and shortest the shortest pair witness from an anchor node.
	ans = post(srv.URL+"/v1/query", `{"query": "(tram+bus)*·cinema", "semantics": "shortest", "from": "N2"}`)
	fmt.Printf("shortest -> from N2: %v\n", ans["paths"])

	// A batch evaluates every request against one pinned epoch.
	batch := post(srv.URL+"/v1/batch",
		`{"requests": [{"query": "tram·cinema"}, {"query": "bus·tram", "semantics": "witness"}, {"query": "cinema"}]}`)
	fmt.Printf("batch of 3 -> shared epoch %v\n", batch["epoch"])

	// Errors answer the structured envelope {"error": {"code", "message"}}.
	resp, err := http.Post(srv.URL+"/v1/query", "application/json",
		bytes.NewReader([]byte(`{"query": "tram·cinema", "semantics": "fancy"}`)))
	if err != nil {
		log.Fatal(err)
	}
	var envelope map[string]any
	json.NewDecoder(resp.Body).Decode(&envelope)
	resp.Body.Close()
	fmt.Printf("bad semantics -> %d %v\n", resp.StatusCode, envelope["error"])

	// A mutation publishes a new epoch; the stale cached answer is gone.
	mut := post(srv.URL+"/mutate", `{"edges": [{"from": "N3", "label": "cinema", "to": "C3"}]}`)
	fmt.Printf("mutate N3 -cinema-> C3 -> epoch %v (%v nodes, %v edges)\n",
		mut["epoch"], mut["nodes"], mut["edges"])
	ans = post(srv.URL+"/v1/query", `{"query": "(tram+bus)*·cinema"}`)
	fmt.Printf("after mutation -> epoch %v, nodes %v, cached %v\n",
		ans["epoch"], ans["nodes"], ans["cached"])

	// The learner is a service of the same engine: /learn pins the served
	// epoch, runs Algorithm 1 on it, and installs the learned query as a
	// serving plan — the returned expression answers /v1/query from the
	// warmed caches immediately.
	learned := post(srv.URL+"/learn", `{"pos": ["N2"], "neg": ["N5"]}`)
	fmt.Printf("learn +N2 -N5 -> query %v (k=%v, SCPs %v), selects %v\n",
		learned["query"], learned["k"], learned["scps"],
		learned["selection"].(map[string]any)["nodes"])
	q, _ := json.Marshal(map[string]any{"query": learned["query"]})
	ans = post(srv.URL+"/v1/query", string(q))
	fmt.Printf("learned query -> epoch %v, nodes %v, cached %v\n",
		ans["epoch"], ans["nodes"], ans["cached"])

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var stats pathquery.EngineStats
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stats: epoch %d, %d queries over %d plans (plan hits %d), "+
		"result hits %d, misses %d\n",
		stats.Epoch, stats.Queries, stats.Plans, stats.PlanHits,
		stats.ResultHits, stats.ResultMisses)
}

func post(url, body string) map[string]any {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: %v", url, out)
	}
	return out
}
