// Interactive learning: the paper's Section 4 scenario on a synthetic
// graph. The session starts with no examples; it repeatedly proposes an
// informative node, a simulated user labels it against a hidden goal
// query, and learning repeats until the learned query selects exactly the
// same nodes as the goal (F1 = 1). Far fewer labels are needed than with
// random (static) example drawing.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"pathquery"
	"pathquery/internal/datasets"
	"pathquery/internal/interactive"
)

func main() {
	// A 2000-node scale-free graph with Zipfian labels, as in Section 5.1.
	g := datasets.ScaleFree(datasets.ScaleFreeConfig{
		Nodes: 2000, Edges: 6000, Labels: 12, ZipfS: 1.0, Seed: 99,
	})
	fmt.Println("graph:", g)

	// The user's hidden intent.
	goal, err := pathquery.ParseQuery(g.Alphabet(), "(l00+l01)·l03*·l05")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hidden goal: %v (selects %d nodes)\n", goal, len(goal.SelectNodes(g)))

	for _, strategy := range []pathquery.Strategy{interactive.KR{}, interactive.KS{}} {
		sess := pathquery.NewSession(g, pathquery.SessionOptions{
			Strategy: strategy,
			Seed:     7,
		})
		oracle := pathquery.NewQueryOracle(g, goal)
		res, err := sess.Run(oracle, pathquery.ExactMatch(g, goal))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nstrategy %s: halted=%v after %d labels (%.2f%% of nodes)\n",
			strategy.Name(), res.Halted, res.Labels(), 100*res.LabelFraction(g))
		fmt.Printf("  learned: %v\n", res.Query)
		fmt.Printf("  mean time between interactions: %v\n", res.MeanTimeBetweenInteractions())
		pos, neg := 0, 0
		for _, it := range res.Interactions {
			if it.Positive {
				pos++
			} else {
				neg++
			}
		}
		fmt.Printf("  labels: %d positive, %d negative\n", pos, neg)
	}

	// Contrast with the static protocol: how many random labels before the
	// learner nails the goal exactly?
	rng := rand.New(rand.NewSource(11))
	goalSel := goal.Select(g)
	for _, fraction := range []float64{0.01, 0.05, 0.10, 0.25} {
		pos, neg := datasets.RandomSample(g, goal, fraction, rng)
		learned, err := pathquery.Learn(g, pathquery.Sample{Pos: pos, Neg: neg}, pathquery.Options{})
		f1 := 0.0
		if err == nil {
			f1 = pathquery.Score(g, goal, learned).F1()
		}
		_ = goalSel
		fmt.Printf("static %5.1f%% labels -> F1 %.3f\n", 100*fraction, f1)
	}
}
