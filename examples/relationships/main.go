// Binary and n-ary semantics (Appendix B): learning queries that select
// node pairs and node tuples on a small professional network. A recruiter
// wants pairs (person, company) connected by "worked-with colleagues who
// are employed by" chains, giving pair examples instead of a regex.
package main

import (
	"fmt"
	"log"

	"pathquery"
)

func main() {
	g := pathquery.NewGraph(nil)
	for _, e := range [][3]string{
		{"ana", "colleague", "bob"},
		{"bob", "colleague", "carol"},
		{"carol", "employedBy", "acme"},
		{"bob", "employedBy", "acme"},
		{"dan", "colleague", "erin"},
		{"erin", "employedBy", "globex"},
		{"ana", "friend", "dan"},
		{"frank", "friend", "erin"},
		{"acme", "partnerOf", "globex"},
	} {
		g.AddEdgeByName(e[0], e[1], e[2])
	}
	fmt.Println("graph:", g)

	node := func(name string) pathquery.NodeID {
		id, ok := g.NodeByName(name)
		if !ok {
			log.Fatalf("no node %q", name)
		}
		return id
	}

	// Binary semantics: the recruiter marks reachable (person, company)
	// pairs positively, friendship-only routes negatively — and one
	// self-pair, so the learned language cannot degenerate to accepting ε.
	pairs := pathquery.PairSample{
		Pos: []pathquery.Pair{
			{From: node("ana"), To: node("acme")},
			{From: node("dan"), To: node("globex")},
		},
		Neg: []pathquery.Pair{
			{From: node("ana"), To: node("dan")},
			{From: node("frank"), To: node("globex")},
			{From: node("ana"), To: node("ana")},
		},
	}
	binary, err := pathquery.LearnBinary(g, pairs, pathquery.Options{})
	if err != nil {
		log.Fatalf("binary learner abstained: %v", err)
	}
	fmt.Println("\nlearned binary query:", binary)
	for _, from := range []string{"ana", "bob", "dan", "frank"} {
		for _, v := range binary.SelectPairsFrom(g, node(from)) {
			fmt.Printf("  selected pair (%s, %s)\n", from, g.NodeName(v))
		}
	}

	// N-ary semantics: triples (person, contact, company) — who can
	// introduce whom into which company.
	// Negative tuples are wrong in every hop (the paper's Algorithm 3
	// projects each negative tuple onto all positions).
	tuples := pathquery.TupleSample{
		Pos: [][]pathquery.NodeID{
			{node("ana"), node("bob"), node("acme")},
			{node("bob"), node("carol"), node("acme")},
		},
		Neg: [][]pathquery.NodeID{
			{node("frank"), node("dan"), node("acme")},
			{node("dan"), node("ana"), node("globex")},
			{node("frank"), node("dan"), node("dan")},
		},
	}
	nary, err := pathquery.LearnNary(g, tuples, pathquery.Options{})
	if err != nil {
		log.Fatalf("n-ary learner abstained: %v", err)
	}
	fmt.Println("\nlearned 3-ary query:", nary)
	for _, tuple := range nary.SelectTuples(g) {
		fmt.Printf("  selected triple (%s, %s, %s)\n",
			g.NodeName(tuple[0]), g.NodeName(tuple[1]), g.NodeName(tuple[2]))
	}
}
